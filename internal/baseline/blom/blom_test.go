package blom

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func testGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(xrand.New(1), topology.Config{N: n, Density: 10})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFieldArithmetic(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, P - 1}, {P - 1, P - 1}, {12345, 67890},
	}
	for _, c := range cases {
		if got := add(c.a, c.b); got != (c.a+c.b)%P {
			t.Fatalf("add(%d,%d) = %d", c.a, c.b, got)
		}
		if got := sub(add(c.a, c.b), c.b); got != c.a {
			t.Fatalf("sub(add(%d,%d),%d) = %d", c.a, c.b, c.b, got)
		}
	}
	// Fermat inverse.
	for _, a := range []uint64{1, 2, 12345, P - 1} {
		if got := mul(a, inv(a)); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	if pow(3, 0) != 1 || pow(3, 1) != 3 || pow(3, 4) != 81 {
		t.Fatal("pow small cases wrong")
	}
}

func TestFieldProperties(t *testing.T) {
	rng := xrand.New(5)
	f := func(ar, br, cr uint32) bool {
		a, b, c := uint64(ar)%P, uint64(br)%P, uint64(cr)%P
		// Distributivity: a*(b+c) = a*b + a*c.
		if mul(a, add(b, c)) != add(mul(a, b), mul(a, c)) {
			return false
		}
		// Commutativity.
		return mul(a, b) == mul(b, a) && add(a, b) == add(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestSpaceKeySymmetry(t *testing.T) {
	// The defining Blom property: K_ij computed by i equals K_ji computed
	// by j, for every pair.
	sp := newSpace(xrand.New(7), 5, 30)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			if sp.Key(i, j) != sp.Key(j, i) {
				t.Fatalf("K_%d,%d asymmetric", i, j)
			}
		}
	}
}

func TestSpaceKeysDistinct(t *testing.T) {
	sp := newSpace(xrand.New(9), 8, 40)
	seen := map[uint64][2]int{}
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			k := sp.Key(i, j)
			if prev, dup := seen[k]; dup {
				t.Fatalf("pairs %v and (%d,%d) share key %d", prev, i, j, k)
			}
			seen[k] = [2]int{i, j}
		}
	}
}

func TestLambdaPlusOneBreak(t *testing.T) {
	// The real attack: λ+1 captured rows reconstruct D and with it every
	// key in the space, including pairs of uncaptured nodes.
	const lambda, n = 6, 30
	sp := newSpace(xrand.New(11), lambda, n)
	captured := []int{3, 7, 11, 15, 19, 23, 27} // λ+1 = 7 nodes
	d, ok := SolveD(sp, captured)
	if !ok {
		t.Fatal("SolveD failed with λ+1 rows")
	}
	// Check the reconstruction against keys of UNCAPTURED pairs.
	for _, pair := range [][2]int{{0, 1}, {2, 8}, {28, 29}, {4, 26}} {
		real := sp.Key(pair[0], pair[1])
		forged := KeyFromD(sp, d, pair[0], pair[1])
		if real != forged {
			t.Fatalf("reconstructed key for %v: %d != %d", pair, forged, real)
		}
	}
	// Reconstructed D must equal the secret (symmetric) D.
	for r := range d {
		for c := range d[r] {
			if d[r][c] != sp.d[r][c] {
				t.Fatalf("D[%d][%d] reconstruction mismatch", r, c)
			}
		}
	}
}

func TestLambdaRowsInsufficient(t *testing.T) {
	// With only λ rows SolveD must refuse (underdetermined).
	sp := newSpace(xrand.New(13), 6, 30)
	if _, ok := SolveD(sp, []int{1, 2, 3, 4, 5, 6}); ok {
		t.Fatal("SolveD succeeded with only λ rows")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	m := [][]uint64{{2, 1}, {1, 3}}
	b := []uint64{5, 10}
	x, ok := solveLinear(m, b)
	if !ok || x[0] != 1 || x[1] != 3 {
		t.Fatalf("solveLinear = %v, %v", x, ok)
	}
	// Singular system.
	if _, ok := solveLinear([][]uint64{{1, 2}, {2, 4}}, []uint64{1, 2}); ok {
		t.Fatal("singular system solved")
	}
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t, 20)
	bad := []Params{
		{Lambda: 0, Spaces: 5, SpacesPerNode: 2},
		{Lambda: 3, Spaces: 0, SpacesPerNode: 2},
		{Lambda: 3, Spaces: 5, SpacesPerNode: 0},
		{Lambda: 3, Spaces: 5, SpacesPerNode: 6},
	}
	for i, p := range bad {
		if _, err := New(g, p, xrand.New(1)); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestSchemeLinkKeysAgree(t *testing.T) {
	g := testGraph(t, 100)
	s, err := New(g, Params{Lambda: 5, Spaces: 10, SpacesPerNode: 3}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	secured := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			ku, okU := s.LinkKey(u, int(v))
			kv, okV := s.LinkKey(int(v), u)
			if okU != okV {
				t.Fatalf("securability asymmetric for %d-%d", u, v)
			}
			if okU {
				secured++
				if ku != kv {
					t.Fatalf("link key asymmetric for %d-%d", u, v)
				}
			}
		}
	}
	if secured == 0 {
		t.Fatal("no secured links")
	}
}

func TestStorageConstant(t *testing.T) {
	g := testGraph(t, 50)
	p := Params{Lambda: 9, Spaces: 12, SpacesPerNode: 3}
	s, err := New(g, p, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 10
	for u := 0; u < g.N(); u++ {
		if s.KeysPerNode(u) != want {
			t.Fatalf("node %d stores %d, want %d", u, s.KeysPerNode(u), want)
		}
	}
	if s.Name() != "blom-multispace" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Params() != p {
		t.Fatal("Params roundtrip failed")
	}
}

func TestThresholdResilience(t *testing.T) {
	// Below the threshold the scheme is essentially uncompromised; far
	// above it, it collapses. This is the characteristic Du et al. curve.
	g, err := topology.Generate(xrand.New(23), topology.Config{N: 400, Density: 12})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Lambda: 9, Spaces: 12, SpacesPerNode: 3}
	s, err := New(g, p, xrand.New(29))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	few := s.Capture(rng.Sample(400, 8)) // well under λ+1 per space on average
	if few.Fraction() > 0.05 {
		t.Fatalf("sub-threshold capture compromised %v", few.Fraction())
	}
	many := s.Capture(rng.Sample(400, 200)) // ~50 carriers per space >> λ
	if many.Fraction() < 0.9 {
		t.Fatalf("super-threshold capture compromised only %v", many.Fraction())
	}
}

func TestCaptureBeyondLeaksRemotely(t *testing.T) {
	// Once a space is broken, links far from the captures fall too —
	// Blom shares random-kp's non-locality, unlike the paper's protocol.
	g, err := topology.Generate(xrand.New(37), topology.Config{N: 500, Density: 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Params{Lambda: 4, Spaces: 6, SpacesPerNode: 3}, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	captured := xrand.New(43).Sample(500, 60)
	rep := s.CaptureBeyond(captured, 4)
	if rep.CompromisedLinks == 0 {
		t.Fatal("broken spaces should compromise remote links")
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph(t, 40)
	p := Params{Lambda: 4, Spaces: 6, SpacesPerNode: 2}
	a, err := New(g, p, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, p, xrand.New(51))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			ka, oka := a.LinkKey(u, int(v))
			kb, okb := b.LinkKey(u, int(v))
			if oka != okb || ka != kb {
				t.Fatal("same seed produced different schemes")
			}
		}
	}
}

func BenchmarkSpaceKey(b *testing.B) {
	sp := newSpace(xrand.New(1), 19, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Key(i%1000, (i+1)%1000)
	}
}

func BenchmarkSolveD(b *testing.B) {
	sp := newSpace(xrand.New(1), 19, 100)
	captured := make([]int, 20)
	for i := range captured {
		captured[i] = i * 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := SolveD(sp, captured); !ok {
			b.Fatal("solve failed")
		}
	}
}
