package randomkp

import (
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/crypt"
	"repro/internal/node"
	"repro/internal/xrand"
)

// This file implements the Eschenauer-Gligor shared-key discovery phase
// as executable node behaviors, so the scheme's bootstrap cost is
// measured on the same simulated radio as the paper's protocol.
//
// The modeled protocol:
//
//  1. Each node is preloaded with a ring of m pool-key IDs and the
//     corresponding keys (derived here as F(poolMaster, id)).
//  2. Discovery: every node broadcasts its key-ID list IN THE CLEAR (the
//     EG paper's simplest variant) — one transmission, but a large one:
//     4 bytes per ring entry.
//  3. Each receiver intersects the advertised IDs with its own ring; with
//     q or more shared IDs both ends derive the link key by folding the
//     shared pool keys in ID order, and the receiver answers with a
//     CONFIRM MAC under that key. A link is operational when the confirm
//     verifies.
//
// Path-key establishment for neighbor pairs that share no pool key (EG's
// second phase, which needs multi-hop negotiation through already-secured
// links) is out of scope; such links are reported as unsecured, exactly
// as in the analytical model.
//
// Security note surfaced by the tests: discovery is unauthenticated, so
// an adversary advertising MANY key IDs makes every victim compute and
// store a pending link key — a storage/CPU attack cousin of the LEAP
// HELLO flood — but it cannot CONFIRM without the pool keys themselves.

// Discovery message types.
const (
	rHello   byte = 1
	rConfirm byte = 2
)

// BootConfig times the EG discovery phase.
type BootConfig struct {
	// HelloSpread randomizes the discovery broadcasts.
	HelloSpread time.Duration
	// ConfirmAt is when nodes batch-send their CONFIRMs; it must exceed
	// HelloSpread plus the propagation delay so every advertisement has
	// landed (otherwise a confirm can reach a peer that has not yet
	// computed the pending link key, and the handshake goes asymmetric).
	ConfirmAt time.Duration
}

// DefaultBootConfig mirrors the main protocol's setup timescale.
func DefaultBootConfig() BootConfig {
	return BootConfig{
		HelloSpread: 200 * time.Millisecond,
		ConfirmAt:   250 * time.Millisecond,
	}
}

// BootNode is one EG node's discovery state machine (node.Behavior).
type BootNode struct {
	cfg        BootConfig
	id         node.ID
	poolMaster crypt.Key
	ring       []int32 // sorted pool-key IDs

	// pending maps peer -> candidate link key computed from an
	// (unauthenticated) advertisement; confirmed marks peers whose
	// CONFIRM verified.
	pending   map[node.ID]crypt.Key
	confirmed map[node.ID]crypt.Key
}

// NewBootNode provisions a node with a ring drawn from the pool.
func NewBootNode(cfg BootConfig, id node.ID, poolMaster crypt.Key, poolSize, ringSize int, rng *xrand.RNG) *BootNode {
	sample := rng.Sample(poolSize, ringSize)
	ring := make([]int32, len(sample))
	for i, s := range sample {
		ring[i] = int32(s)
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
	return &BootNode{
		cfg:        cfg,
		id:         id,
		poolMaster: poolMaster,
		ring:       ring,
		pending:    make(map[node.ID]crypt.Key),
		confirmed:  make(map[node.ID]crypt.Key),
	}
}

// poolKey derives the pool key for an ID. Honest nodes only hold their
// ring's keys; deriving from the master here stands in for the preloaded
// ring (the adversary does NOT get the master).
func (b *BootNode) poolKey(id int32) crypt.Key {
	return crypt.DeriveID(b.poolMaster, crypt.LabelNode, uint32(id))
}

// linkKeyFrom folds the shared pool keys (in ID order) into a link key.
func (b *BootNode) linkKeyFrom(shared []int32) crypt.Key {
	var k crypt.Key
	for _, id := range shared {
		pk := b.poolKey(id)
		k = crypt.DeriveKey(pk, crypt.LabelNode, k[:])
	}
	return k
}

// Ring returns the node's pool-key IDs.
func (b *BootNode) Ring() []int32 { return b.ring }

// PendingCount returns how many candidate link keys the node holds —
// inflated by advertisement floods.
func (b *BootNode) PendingCount() int { return len(b.pending) }

// Confirmed returns the verified link key toward peer.
func (b *BootNode) Confirmed(peer node.ID) (crypt.Key, bool) {
	k, ok := b.confirmed[peer]
	return k, ok
}

// ConfirmedCount returns the number of operational secured links.
func (b *BootNode) ConfirmedCount() int { return len(b.confirmed) }

// Timer tags.
const (
	tagEGHello   node.Tag = 1
	tagEGConfirm node.Tag = 2
)

// Start implements node.Behavior.
func (b *BootNode) Start(ctx node.Context) {
	delay := time.Duration(ctx.Rand().Uint64n(uint64(b.cfg.HelloSpread)))
	ctx.SetTimer(delay, tagEGHello)
	ctx.SetTimer(b.cfg.ConfirmAt-ctx.Now(), tagEGConfirm)
}

// Timer implements node.Behavior.
func (b *BootNode) Timer(ctx node.Context, tag node.Tag) {
	switch tag {
	case tagEGHello:
		pkt := make([]byte, 5+4*len(b.ring))
		pkt[0] = rHello
		binary.BigEndian.PutUint32(pkt[1:], uint32(b.id))
		for i, id := range b.ring {
			binary.BigEndian.PutUint32(pkt[5+4*i:], uint32(id))
		}
		ctx.Broadcast(pkt)
	case tagEGConfirm:
		b.sendConfirms(ctx)
	}
}

// sendConfirms proves key possession to every peer whose advertisement
// overlapped our ring — one message per pending peer, batched after the
// discovery window so both ends hold the candidate key first.
func (b *BootNode) sendConfirms(ctx node.Context) {
	for peer, lk := range b.pending {
		msg := make([]byte, 9, 9+crypt.MACSize)
		msg[0] = rConfirm
		binary.BigEndian.PutUint32(msg[1:], uint32(b.id))
		binary.BigEndian.PutUint32(msg[5:], uint32(peer))
		tag := crypt.MAC(lk, msg[:9])
		ctx.ChargeMAC(9)
		msg = append(msg, tag[:]...)
		ctx.Broadcast(msg)
	}
}

// Receive implements node.Behavior.
func (b *BootNode) Receive(ctx node.Context, _ node.ID, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case rHello:
		b.onHello(ctx, pkt)
	case rConfirm:
		b.onConfirm(ctx, pkt)
	}
}

// onHello intersects the advertised ring with ours; on a q-overlap (q=1
// here; the multi-key variant only changes the threshold) it computes the
// candidate link key and stores it pending for the confirm phase.
func (b *BootNode) onHello(ctx node.Context, pkt []byte) {
	if (len(pkt)-5)%4 != 0 || len(pkt) < 9 {
		return
	}
	peer := node.ID(binary.BigEndian.Uint32(pkt[1:]))
	if peer == b.id {
		return
	}
	advertised := make([]int32, (len(pkt)-5)/4)
	for i := range advertised {
		advertised[i] = int32(binary.BigEndian.Uint32(pkt[5+4*i:]))
	}
	sort.Slice(advertised, func(i, j int) bool { return advertised[i] < advertised[j] })
	shared := intersect(b.ring, advertised)
	if len(shared) == 0 {
		return
	}
	lk := b.linkKeyFrom(shared)
	ctx.ChargeMAC(crypt.KeySize * len(shared))
	b.pending[peer] = lk
}

// onConfirm verifies the peer's proof of key possession and promotes the
// pending link key to confirmed.
func (b *BootNode) onConfirm(ctx node.Context, pkt []byte) {
	if len(pkt) != 9+crypt.MACSize {
		return
	}
	sender := node.ID(binary.BigEndian.Uint32(pkt[1:]))
	to := node.ID(binary.BigEndian.Uint32(pkt[5:]))
	if to != b.id {
		return
	}
	lk, ok := b.pending[sender]
	if !ok {
		return
	}
	ctx.ChargeMAC(9)
	if !crypt.VerifyMAC(lk, pkt[9:], pkt[:9]) {
		return
	}
	b.confirmed[sender] = lk
}

// ForgeAdvertisement builds the adversary's discovery flood packet
// claiming the given identity and key IDs.
func ForgeAdvertisement(fakeID uint32, keyIDs []int32) []byte {
	pkt := make([]byte, 5+4*len(keyIDs))
	pkt[0] = rHello
	binary.BigEndian.PutUint32(pkt[1:], fakeID)
	for i, id := range keyIDs {
		binary.BigEndian.PutUint32(pkt[5+4*i:], uint32(id))
	}
	return pkt
}
