package randomkp

import (
	"testing"
	"time"

	"repro/internal/crypt"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func bootEG(t *testing.T, n int, density float64, poolSize, ringSize int, seed uint64) (*sim.Engine, []*BootNode, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(xrand.New(seed), topology.Config{N: n, Density: density})
	if err != nil {
		t.Fatal(err)
	}
	var master crypt.Key
	master[0] = 0x42
	cfg := DefaultBootConfig()
	rng := xrand.New(seed * 13)
	nodes := make([]*BootNode, n)
	behaviors := make([]node.Behavior, n)
	for i := range nodes {
		nodes[i] = NewBootNode(cfg, node.ID(i), master, poolSize, ringSize, rng.Split(uint64(i)))
		behaviors[i] = nodes[i]
	}
	eng, err := sim.New(sim.Config{Graph: g, Seed: seed}, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	eng.Run(cfg.HelloSpread + 200*time.Millisecond)
	return eng, nodes, g
}

func TestEGDiscoveryKeysAgree(t *testing.T) {
	// Dense rings (m^2 >> P) so nearly every link shares a key.
	_, nodes, g := bootEG(t, 60, 10, 100, 30, 1)
	confirmedLinks := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			ku, okU := nodes[u].Confirmed(node.ID(v))
			kv, okV := nodes[v].Confirmed(node.ID(u))
			if okU != okV {
				t.Fatalf("confirmation asymmetric on %d-%d", u, v)
			}
			if okU {
				confirmedLinks++
				if !ku.Equal(kv) {
					t.Fatalf("link keys disagree on %d-%d", u, v)
				}
			}
		}
	}
	if confirmedLinks == 0 {
		t.Fatal("no links confirmed")
	}
}

func TestEGSecuredFractionMatchesRings(t *testing.T) {
	// A link confirms iff the rings intersect; cross-check against the
	// rings directly.
	_, nodes, g := bootEG(t, 60, 10, 500, 40, 2)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			shared := intersect(nodes[u].ring, nodes[v].ring)
			_, confirmed := nodes[u].Confirmed(node.ID(v))
			if (len(shared) > 0) != confirmed {
				t.Fatalf("link %d-%d: %d shared keys but confirmed=%v", u, v, len(shared), confirmed)
			}
		}
	}
}

func TestEGMessageAndByteCost(t *testing.T) {
	// EG's discovery: one big broadcast + one confirm per secured
	// neighbor. The advertisement alone is 5+4m bytes — versus the
	// paper's 21-byte HELLO.
	const ringSize = 50
	eng, nodes, g := bootEG(t, 80, 10, 1000, ringSize, 3)
	totalTx := 0
	for i := 0; i < g.N(); i++ {
		totalTx += eng.Meter(i).TxCount()
	}
	pending := 0
	confirmed := 0
	for _, n := range nodes {
		pending += n.PendingCount()
		confirmed += n.ConfirmedCount()
	}
	want := g.N() + pending // one advert each + one confirm per pending peer
	if totalTx != want {
		t.Fatalf("transmissions %d, want %d", totalTx, want)
	}
	// On a clean medium every pending link key confirms.
	if confirmed != pending {
		t.Fatalf("confirmed %d of %d pending", confirmed, pending)
	}
	// Energy dominated by the fat advertisements.
	var tx0 float64
	tx0 = eng.Meter(0).Tx()
	if tx0 <= 0 {
		t.Fatal("no transmit energy recorded")
	}
}

func TestEGAdvertFloodInflatesPendingOnly(t *testing.T) {
	// The EG cousin of the LEAP HELLO flood: forged advertisements make
	// victims compute and store PENDING link keys, but without the pool
	// keys the adversary can never confirm.
	g, err := topology.Generate(xrand.New(4), topology.Config{N: 50, Density: 10})
	if err != nil {
		t.Fatal(err)
	}
	var master crypt.Key
	master[0] = 0x24
	cfg := DefaultBootConfig()
	rng := xrand.New(5)
	nodes := make([]*BootNode, g.N())
	behaviors := make([]node.Behavior, g.N())
	for i := range nodes {
		nodes[i] = NewBootNode(cfg, node.ID(i), master, 200, 30, rng.Split(uint64(i)))
		behaviors[i] = nodes[i]
	}
	eng, err := sim.New(sim.Config{Graph: g, Seed: 4}, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	victim := 25
	nbs := g.Neighbors(victim)
	if len(nbs) == 0 {
		t.Skip("isolated victim")
	}
	attackPos := int(nbs[0])
	// The adversary claims to hold the ENTIRE pool, so every victim
	// shares keys with it.
	allIDs := make([]int32, 200)
	for i := range allIDs {
		allIDs[i] = int32(i)
	}
	const fakes = 300
	for k := 0; k < fakes; k++ {
		k := k
		at := time.Duration(k) * 300 * time.Microsecond
		eng.Schedule(at, func() {
			eng.InjectAt(attackPos, node.ID(500000+k), ForgeAdvertisement(uint32(500000+k), allIDs))
		})
	}
	eng.Run(cfg.HelloSpread + 300*time.Millisecond)

	if p := nodes[victim].PendingCount(); p < fakes {
		t.Fatalf("victim pending table %d, want >= %d", p, fakes)
	}
	// None of the forged identities may be confirmed.
	for k := 0; k < fakes; k++ {
		if _, ok := nodes[victim].Confirmed(node.ID(500000 + k)); ok {
			t.Fatal("forged identity confirmed without pool keys")
		}
	}
}

func TestEGForgedConfirmRejected(t *testing.T) {
	eng, nodes, g := bootEG(t, 40, 8, 100, 20, 6)
	victim := 20
	nbs := g.Neighbors(victim)
	if len(nbs) == 0 {
		t.Skip("isolated victim")
	}
	before := nodes[victim].ConfirmedCount()
	// A confirm claiming identity 999999 with a garbage MAC.
	msg := make([]byte, 9+crypt.MACSize)
	msg[0] = rConfirm
	msg[4] = 0xFF // sender id junk
	msg[8] = byte(victim)
	eng.Schedule(eng.Now()+time.Millisecond, func() {
		eng.InjectAt(int(nbs[0]), node.ID(0xFF), msg)
	})
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if nodes[victim].ConfirmedCount() != before {
		t.Fatal("forged confirm accepted")
	}
}
