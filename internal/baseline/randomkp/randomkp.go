// Package randomkp implements random key predistribution — the
// Eschenauer-Gligor basic scheme [7] and the q-composite hardening of
// Chan, Perrig and Song [8] — as the paper's main comparison class.
//
// Before deployment each node draws a ring of m distinct keys uniformly
// from a pool of P keys. Two neighbors can secure their link iff they
// share at least q pool keys (q = 1 is the basic scheme); the link key is
// (the hash of) all shared keys. The scheme's characteristic weaknesses,
// which the paper's Section III points out and the experiments here
// quantify:
//
//   - probabilistic security: capturing nodes reveals pool keys that also
//     protect links between *uncaptured* nodes elsewhere in the network,
//     so the compromised fraction grows with every capture;
//   - broadcast cost: a node shares a different key (set) with each
//     neighbor, so broadcasting one message costs up to one transmission
//     per neighbor — "extremely energy consuming" in the paper's words;
//   - imperfect connectivity: some neighbor pairs share no key at all.
package randomkp

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Params configures the predistribution.
type Params struct {
	// PoolSize is P, the number of keys in the global pool.
	PoolSize int
	// RingSize is m, the number of keys preloaded into each node.
	RingSize int
	// Q is the minimum number of shared pool keys required to secure a
	// link (1 = basic Eschenauer-Gligor).
	Q int
}

// DefaultParams returns the classic configuration from the EG paper:
// a 10,000-key pool with 250-key rings gives ~0.5 single-key share
// probability... the commonly simulated 100,000/250 gives ~0.33. We use
// P=10000, m=83 (share probability ~0.5) scaled for simulation speed.
func DefaultParams() Params {
	return Params{PoolSize: 10000, RingSize: 83, Q: 1}
}

// Scheme is a concrete predistribution over a topology.
type Scheme struct {
	g      *topology.Graph
	p      Params
	rings  [][]int32 // sorted key IDs per node
	shared map[[2]int32][]int32
}

// New draws every node's key ring (driven by rng) and precomputes the
// shared-key sets of all topology links (the shared-key discovery phase
// that EG nodes perform by broadcasting their key IDs in the clear).
func New(g *topology.Graph, p Params, rng *xrand.RNG) (*Scheme, error) {
	if p.PoolSize <= 0 || p.RingSize <= 0 || p.RingSize > p.PoolSize {
		return nil, fmt.Errorf("randomkp: invalid params %+v", p)
	}
	if p.Q < 1 {
		p.Q = 1
	}
	s := &Scheme{
		g:      g,
		p:      p,
		rings:  make([][]int32, g.N()),
		shared: make(map[[2]int32][]int32),
	}
	for u := 0; u < g.N(); u++ {
		sample := rng.Sample(p.PoolSize, p.RingSize)
		ring := make([]int32, len(sample))
		for i, k := range sample {
			ring[i] = int32(k)
		}
		sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
		s.rings[u] = ring
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) < u {
				continue
			}
			key := [2]int32{int32(u), v}
			s.shared[key] = intersect(s.rings[u], s.rings[v])
		}
	}
	return s, nil
}

// intersect returns the intersection of two sorted slices.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Name implements baseline.Scheme.
func (s *Scheme) Name() string {
	if s.p.Q > 1 {
		return fmt.Sprintf("q-composite(q=%d)", s.p.Q)
	}
	return "random-kp"
}

// Params returns the predistribution parameters.
func (s *Scheme) Params() Params { return s.p }

// KeysPerNode implements baseline.Scheme: the full ring, independent of
// the neighborhood — this is the storage the paper calls out as growing
// with network size for constant security.
func (s *Scheme) KeysPerNode(u int) int { return s.p.RingSize }

// sharedFor returns the shared pool keys of link (u, v).
func (s *Scheme) sharedFor(u, v int) []int32 {
	if v < u {
		u, v = v, u
	}
	return s.shared[[2]int32{int32(u), int32(v)}]
}

// LinkSecured reports whether neighbors u and v share enough keys (>= q).
func (s *Scheme) LinkSecured(u, v int) bool {
	return len(s.sharedFor(u, v)) >= s.p.Q
}

// SecuredLinkFraction returns the fraction of topology links that can be
// secured at all — EG's "local connectivity" p.
func (s *Scheme) SecuredLinkFraction() float64 {
	total, secured := 0, 0
	for u := 0; u < s.g.N(); u++ {
		for _, v := range s.g.Neighbors(u) {
			if int(v) < u {
				continue
			}
			total++
			if s.LinkSecured(u, int(v)) {
				secured++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(secured) / float64(total)
}

// BroadcastTransmissions implements baseline.Scheme: the node must
// re-encrypt for every distinct link-key class among its secured
// neighbors. Neighbors whose shared-key set is identical can be covered
// by one transmission; in practice the sets are almost always distinct,
// so the cost approaches the degree — the contrast with the paper's
// single-transmission cluster broadcast.
func (s *Scheme) BroadcastTransmissions(u int) int {
	classes := make(map[string]bool)
	for _, v := range s.g.Neighbors(u) {
		shared := s.sharedFor(u, int(v))
		if len(shared) < s.p.Q {
			continue // unreachable securely
		}
		sig := make([]byte, 0, 4*len(shared))
		for _, k := range shared {
			sig = append(sig, byte(k>>24), byte(k>>16), byte(k>>8), byte(k))
		}
		classes[string(sig)] = true
	}
	return len(classes)
}

// CaptureBeyond is Capture restricted to links whose sender is at least
// minHops away from every captured node — the locality probe. Random
// predistribution compromises such remote links (revealed pool keys are
// reused network-wide); localized schemes cannot.
func (s *Scheme) CaptureBeyond(captured []int, minHops int) baseline.CompromiseReport {
	set := baseline.CaptureSet(captured)
	dist := baseline.HopsFromSet(s.g, captured)
	known := make(map[int32]bool)
	for _, c := range captured {
		for _, k := range s.rings[c] {
			known[k] = true
		}
	}
	rep := baseline.CompromiseReport{}
	for u := 0; u < s.g.N(); u++ {
		if set[u] || (dist[u] != -1 && dist[u] < minHops) {
			continue
		}
		for _, v := range s.g.Neighbors(u) {
			if set[int(v)] {
				continue
			}
			shared := s.sharedFor(u, int(v))
			if len(shared) < s.p.Q {
				continue
			}
			rep.TotalLinks++
			compromised := true
			for _, k := range shared {
				if !known[k] {
					compromised = false
					break
				}
			}
			if compromised {
				rep.CompromisedLinks++
			}
		}
	}
	return rep
}

// Capture implements baseline.Scheme: captured rings join the adversary's
// pool-key set; a link between uncaptured nodes is compromised when ALL
// of its shared keys are known to the adversary (the standard EG/CPS
// resilience metric).
func (s *Scheme) Capture(captured []int) baseline.CompromiseReport {
	set := baseline.CaptureSet(captured)
	known := make(map[int32]bool)
	for _, c := range captured {
		for _, k := range s.rings[c] {
			known[k] = true
		}
	}
	rep := baseline.CompromiseReport{}
	for u := 0; u < s.g.N(); u++ {
		if set[u] {
			continue
		}
		for _, v := range s.g.Neighbors(u) {
			if set[int(v)] {
				continue
			}
			shared := s.sharedFor(u, int(v))
			if len(shared) < s.p.Q {
				continue // link never secured; not counted
			}
			rep.TotalLinks++
			compromised := true
			for _, k := range shared {
				if !known[k] {
					compromised = false
					break
				}
			}
			if compromised {
				rep.CompromisedLinks++
			}
		}
	}
	return rep
}
