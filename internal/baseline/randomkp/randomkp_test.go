package randomkp

import (
	"math"
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func testGraph(t *testing.T, n int, density float64, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(xrand.New(seed), topology.Config{N: n, Density: density})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t, 20, 8, 1)
	rng := xrand.New(2)
	bad := []Params{
		{PoolSize: 0, RingSize: 10},
		{PoolSize: 10, RingSize: 0},
		{PoolSize: 10, RingSize: 20},
	}
	for i, p := range bad {
		if _, err := New(g, p, rng); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestRingsAreValid(t *testing.T) {
	g := testGraph(t, 100, 10, 3)
	p := Params{PoolSize: 500, RingSize: 30, Q: 1}
	s, err := New(g, p, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		ring := s.rings[u]
		if len(ring) != p.RingSize {
			t.Fatalf("node %d ring size %d", u, len(ring))
		}
		for i := 1; i < len(ring); i++ {
			if ring[i] <= ring[i-1] {
				t.Fatalf("node %d ring not sorted/unique at %d", u, i)
			}
		}
		if ring[0] < 0 || ring[len(ring)-1] >= int32(p.PoolSize) {
			t.Fatalf("node %d ring out of pool range", u)
		}
		if s.KeysPerNode(u) != p.RingSize {
			t.Fatal("KeysPerNode != ring size")
		}
	}
}

func TestSharedKeySymmetryAndCorrectness(t *testing.T) {
	g := testGraph(t, 80, 10, 5)
	s, err := New(g, Params{PoolSize: 200, RingSize: 40, Q: 1}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			a := s.sharedFor(u, int(v))
			b := s.sharedFor(int(v), u)
			if len(a) != len(b) {
				t.Fatal("shared keys asymmetric")
			}
			// Verify against a brute-force intersection.
			inA := map[int32]bool{}
			for _, k := range s.rings[u] {
				inA[k] = true
			}
			count := 0
			for _, k := range s.rings[v] {
				if inA[k] {
					count++
				}
			}
			if count != len(a) {
				t.Fatalf("intersection of %d-%d has %d keys, stored %d", u, v, count, len(a))
			}
		}
	}
}

func TestConnectivityMatchesTheory(t *testing.T) {
	// EG theory: p(share >= 1) = 1 - C(P-m, m)/C(P, m). For P=1000, m=50
	// this is ~1 - prod_{i=0..49} (950-i)/(1000-i) ≈ 0.927.
	g := testGraph(t, 400, 12, 7)
	p := Params{PoolSize: 1000, RingSize: 50, Q: 1}
	s, err := New(g, p, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0
	for i := 0; i < p.RingSize; i++ {
		want *= float64(p.PoolSize-p.RingSize-i) / float64(p.PoolSize-i)
	}
	want = 1 - want
	got := s.SecuredLinkFraction()
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("secured fraction %v, theory %v", got, want)
	}
}

func TestQCompositeSecuresFewerLinks(t *testing.T) {
	g := testGraph(t, 300, 12, 9)
	p1 := Params{PoolSize: 1000, RingSize: 50, Q: 1}
	p3 := Params{PoolSize: 1000, RingSize: 50, Q: 3}
	s1, err := New(g, p1, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := New(g, p3, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if s3.SecuredLinkFraction() >= s1.SecuredLinkFraction() {
		t.Fatalf("q=3 secured %v >= q=1 secured %v",
			s3.SecuredLinkFraction(), s1.SecuredLinkFraction())
	}
	if s1.Name() != "random-kp" || s3.Name() != "q-composite(q=3)" {
		t.Fatalf("names: %q %q", s1.Name(), s3.Name())
	}
}

func TestBroadcastCostApproachesDegree(t *testing.T) {
	// With a large pool, neighbors' shared-key sets are almost surely
	// distinct, so a broadcast costs about one transmission per secured
	// neighbor — the energy contrast with the paper's scheme.
	g := testGraph(t, 200, 12, 11)
	s, err := New(g, Params{PoolSize: 10000, RingSize: 150, Q: 1}, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	totalTx, totalSecured := 0, 0
	for u := 0; u < g.N(); u++ {
		tx := s.BroadcastTransmissions(u)
		secured := 0
		for _, v := range g.Neighbors(u) {
			if s.LinkSecured(u, int(v)) {
				secured++
			}
		}
		if tx > secured {
			t.Fatalf("node %d needs %d transmissions for %d secured neighbors", u, tx, secured)
		}
		totalTx += tx
		totalSecured += secured
	}
	if totalSecured == 0 {
		t.Fatal("no secured links")
	}
	if ratio := float64(totalTx) / float64(totalSecured); ratio < 0.9 {
		t.Fatalf("broadcast cost ratio %v; expected near one tx per neighbor", ratio)
	}
}

func TestCaptureGrowsGlobally(t *testing.T) {
	// The defining weakness: capturing nodes compromises links between
	// UNCAPTURED nodes, and the fraction grows with captures.
	g := testGraph(t, 300, 12, 13)
	s, err := New(g, Params{PoolSize: 1000, RingSize: 80, Q: 1}, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(15)
	prev := -1.0
	for _, k := range []int{0, 5, 20, 60} {
		rep := s.Capture(rng.Sample(g.N(), k))
		frac := rep.Fraction()
		if frac < prev-0.02 { // allow tiny sampling noise
			t.Fatalf("compromise fraction decreased: %v after %d captures (prev %v)", frac, k, prev)
		}
		prev = frac
	}
	// With 60 of 300 nodes captured and these parameters, a substantial
	// fraction of remote links must be compromised.
	rep := s.Capture(rng.Sample(g.N(), 60))
	if rep.Fraction() < 0.2 {
		t.Fatalf("capture of 20%% of nodes compromised only %v of links", rep.Fraction())
	}
}

func TestNoCaptureNoCompromise(t *testing.T) {
	g := testGraph(t, 100, 10, 17)
	s, err := New(g, DefaultParams(), xrand.New(18))
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Capture(nil)
	if rep.CompromisedLinks != 0 {
		t.Fatalf("compromised %d links with zero captures", rep.CompromisedLinks)
	}
}

func TestDeterministicRings(t *testing.T) {
	g := testGraph(t, 50, 8, 19)
	a, err := New(g, DefaultParams(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, DefaultParams(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for i := range a.rings[u] {
			if a.rings[u][i] != b.rings[u][i] {
				t.Fatal("same seed produced different rings")
			}
		}
	}
}
