package leap

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(xrand.New(1), topology.Config{N: 200, Density: 10})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKeyInventoryProportionalToDegree(t *testing.T) {
	g := testGraph(t)
	s := New(g)
	for _, u := range []int{0, 17, 99} {
		want := 2 + 2*g.Degree(u)
		if got := s.KeysPerNode(u); got != want {
			t.Fatalf("node %d stores %d keys, want %d", u, got, want)
		}
	}
	if s.Name() != "leap" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestBootstrapCostProportionalToDegree(t *testing.T) {
	g := testGraph(t)
	s := New(g)
	for _, u := range []int{3, 42} {
		want := 1 + 2*g.Degree(u)
		if got := s.SetupMessages(u); got != want {
			t.Fatalf("node %d setup cost %d, want %d", u, got, want)
		}
	}
	if s.BroadcastTransmissions(5) != 1 {
		t.Fatal("steady-state LEAP broadcast should cost one transmission")
	}
}

func TestCleanCaptureIsLocal(t *testing.T) {
	g := testGraph(t)
	s := New(g)
	rep := s.Capture([]int{10})
	if rep.TotalLinks == 0 {
		t.Fatal("empty link count")
	}
	// Only links incident to node 10's neighborhood leak; globally that
	// is a small fraction, and certainly not everything.
	if rep.Fraction() >= 0.5 {
		t.Fatalf("clean LEAP capture compromised %v of links", rep.Fraction())
	}
	if rep.CompromisedLinks == 0 {
		t.Fatal("capture should leak the neighborhood's cluster-key traffic")
	}
}

func TestHelloFloodInflatesStorage(t *testing.T) {
	g := testGraph(t)
	s := New(g)
	before := s.KeysPerNode(7)
	got := s.HelloFlood(7, 500)
	if got != before+500 {
		t.Fatalf("after flood: %d keys, want %d", got, before+500)
	}
}

func TestHelloFloodThenCaptureIsCatastrophic(t *testing.T) {
	// The paper's attack: flood a node during discovery, capture it
	// later, and the adversary holds keys usable against everyone.
	g := testGraph(t)
	s := New(g)
	s.HelloFlood(7, 1000)
	rep := s.Capture([]int{7})
	if rep.Fraction() != 1.0 {
		t.Fatalf("flood-victim capture compromised %v, want 1.0", rep.Fraction())
	}
	// Capturing a different, unflooded node stays local.
	rep2 := s.Capture([]int{9})
	if rep2.Fraction() >= 0.5 {
		t.Fatalf("unflooded capture compromised %v", rep2.Fraction())
	}
}

func TestNoCaptureNoCompromise(t *testing.T) {
	s := New(testGraph(t))
	rep := s.Capture(nil)
	if rep.CompromisedLinks != 0 {
		t.Fatalf("compromised %d links with zero captures", rep.CompromisedLinks)
	}
}
