package leap

import (
	"encoding/binary"
	"slices"
	"time"

	"repro/internal/crypt"
	"repro/internal/node"
)

// This file implements LEAP's bootstrap as executable node behaviors on
// the same runtimes as the paper's protocol, so the two schemes' setup
// costs are measured on identical simulated radios rather than compared
// analytically.
//
// The modeled protocol (Zhu-Setia-Jajodia, simplified to the parts the
// comparison needs):
//
//  1. Every node is preloaded with the transitory master key KI and
//     derives its individual key Ku = F(KI, u).
//  2. Neighbor discovery: u broadcasts HELLO(u) at a random time; each
//     receiver v answers ACK(v -> u) authenticated under the pairwise key
//     Kuv = F(Kv, u), which both ends can compute (v knows its own Kv;
//     u derives Kv = F(KI, v)). One HELLO per node, one ACK per
//     (neighbor, HELLO) pair.
//  3. Cluster key distribution: u generates its cluster key Kc_u and
//     sends it to EACH neighbor individually, encrypted under the
//     pairwise key — the per-neighbor unicast cost the paper contrasts
//     with its single cluster broadcast.
//  4. At Tmin every node erases KI.
//
// The Section III attack also runs live here: an adversary broadcasting
// forged HELLOs during discovery forces victims to compute and store
// pairwise keys for nonexistent identities.

// Bootstrap message types (LEAP's wire format is private to this package;
// the simulator carries opaque bytes).
const (
	mHello byte = 1
	mAck   byte = 2
	mCKey  byte = 3
)

// BootConfig holds LEAP bootstrap timing.
type BootConfig struct {
	// HelloSpread is the window over which HELLOs are randomized.
	HelloSpread time.Duration
	// ClusterKeyAt is when cluster key distribution starts.
	ClusterKeyAt time.Duration
	// EraseAt is Tmin: when KI is erased.
	EraseAt time.Duration
}

// DefaultBootConfig mirrors the main protocol's setup timescale.
func DefaultBootConfig() BootConfig {
	return BootConfig{
		HelloSpread:  200 * time.Millisecond,
		ClusterKeyAt: 300 * time.Millisecond,
		EraseAt:      600 * time.Millisecond,
	}
}

// LEAP bootstrap timer tags.
const (
	tagLeapHello node.Tag = iota + 1
	tagLeapCKeys
	tagLeapErase
)

// BootNode is one LEAP node's bootstrap state machine. It implements
// node.Behavior.
type BootNode struct {
	cfg BootConfig
	id  node.ID

	ki   crypt.Key // transitory master KI (erased at Tmin)
	ku   crypt.Key // individual key F(KI, u)
	myCK crypt.Key // this node's cluster key

	// pairwise maps neighbor -> Kuv. The HELLO flood inflates this map;
	// that is the attack.
	pairwise map[node.ID]crypt.Key
	// acked marks neighbors whose ACK authenticated correctly.
	acked map[node.ID]bool
	// clusterKeys maps neighbor -> that neighbor's cluster key.
	clusterKeys map[node.ID]crypt.Key

	erased bool

	// pktBuf and openBuf are reusable packet scratch. Broadcast copies per
	// receiver before returning and KeyFromBytes copies the plaintext, so
	// reuse across peers and packets is safe.
	pktBuf  []byte
	openBuf []byte
}

// NewBootNode builds a LEAP node sharing the deployment-wide transitory
// key ki.
func NewBootNode(cfg BootConfig, id node.ID, ki crypt.Key) *BootNode {
	return &BootNode{
		cfg:         cfg,
		id:          id,
		ki:          ki,
		ku:          derive(ki, uint32(id)),
		myCK:        crypt.DeriveKey(derive(ki, uint32(id)), crypt.LabelCluster, []byte("leap-ck")),
		pairwise:    make(map[node.ID]crypt.Key),
		acked:       make(map[node.ID]bool),
		clusterKeys: make(map[node.ID]crypt.Key),
	}
}

// derive computes F(k, id).
func derive(k crypt.Key, id uint32) crypt.Key {
	return crypt.DeriveID(k, crypt.LabelNode, id)
}

// pairwiseKey computes Kuv from v's individual key: Kuv = F(Kv, u).
// Symmetric by construction: both ends derive from (Kv, u) where v is
// the HELLO sender and u the responder... in LEAP the convention is that
// the key is bound to the HELLO sender's identity; we normalize by using
// the numerically smaller ID's individual key and the larger ID as input,
// so both directions agree regardless of who spoke first.
func (b *BootNode) pairwiseKey(peer node.ID) crypt.Key {
	lo, hi := b.id, peer
	if lo > hi {
		lo, hi = hi, lo
	}
	kLo := derive(b.ki, uint32(lo))
	return derive(kLo, uint32(hi))
}

// PairwiseCount returns how many pairwise keys the node stores —
// inflated without bound by a HELLO flood.
func (b *BootNode) PairwiseCount() int { return len(b.pairwise) }

// ClusterKeyOf returns the stored cluster key of a neighbor.
func (b *BootNode) ClusterKeyOf(peer node.ID) (crypt.Key, bool) {
	k, ok := b.clusterKeys[peer]
	return k, ok
}

// MyClusterKey returns this node's own cluster key.
func (b *BootNode) MyClusterKey() crypt.Key { return b.myCK }

// Pairwise returns the stored pairwise key toward peer.
func (b *BootNode) Pairwise(peer node.ID) (crypt.Key, bool) {
	k, ok := b.pairwise[peer]
	return k, ok
}

// Acked reports whether peer's ACK verified.
func (b *BootNode) Acked(peer node.ID) bool { return b.acked[peer] }

// Erased reports whether KI has been destroyed.
func (b *BootNode) Erased() bool { return b.erased }

// Start implements node.Behavior.
func (b *BootNode) Start(ctx node.Context) {
	delay := time.Duration(ctx.Rand().Uint64n(uint64(b.cfg.HelloSpread)))
	ctx.SetTimer(delay, tagLeapHello)
	ctx.SetTimer(b.cfg.ClusterKeyAt-ctx.Now(), tagLeapCKeys)
	ctx.SetTimer(b.cfg.EraseAt-ctx.Now(), tagLeapErase)
}

// Timer implements node.Behavior.
func (b *BootNode) Timer(ctx node.Context, tag node.Tag) {
	switch tag {
	case tagLeapHello:
		pkt := make([]byte, 5)
		pkt[0] = mHello
		binary.BigEndian.PutUint32(pkt[1:], uint32(b.id))
		ctx.Broadcast(pkt)
	case tagLeapCKeys:
		b.distributeClusterKey(ctx)
	case tagLeapErase:
		b.ki.Zero()
		b.erased = true
	}
}

// Receive implements node.Behavior.
func (b *BootNode) Receive(ctx node.Context, from node.ID, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case mHello:
		b.onHello(ctx, pkt)
	case mAck:
		b.onAck(ctx, pkt)
	case mCKey:
		b.onClusterKey(ctx, pkt)
	}
}

// onHello computes and stores the pairwise key toward the claimed sender
// and answers with an authenticated ACK. CRITICALLY — and this is the
// vulnerability the paper exploits — nothing authenticates the HELLO
// itself: any claimed identity causes key computation and storage.
func (b *BootNode) onHello(ctx node.Context, pkt []byte) {
	if b.erased || len(pkt) != 5 {
		return
	}
	peer := node.ID(binary.BigEndian.Uint32(pkt[1:]))
	if peer == b.id {
		return
	}
	kuv := b.pairwiseKey(peer)
	ctx.ChargeMAC(crypt.KeySize * 2) // two PRF applications
	b.pairwise[peer] = kuv

	// ACK(me -> peer), MAC'd under Kuv.
	ack := make([]byte, 9, 9+crypt.MACSize)
	ack[0] = mAck
	binary.BigEndian.PutUint32(ack[1:], uint32(b.id))
	binary.BigEndian.PutUint32(ack[5:], uint32(peer))
	tag := crypt.MAC(kuv, ack[:9])
	ctx.ChargeMAC(9)
	ack = append(ack, tag[:]...)
	ctx.Broadcast(ack)
}

// onAck verifies the responder's MAC, confirming a live bidirectional
// neighbor.
func (b *BootNode) onAck(ctx node.Context, pkt []byte) {
	if len(pkt) != 9+crypt.MACSize {
		return
	}
	sender := node.ID(binary.BigEndian.Uint32(pkt[1:]))
	to := node.ID(binary.BigEndian.Uint32(pkt[5:]))
	if to != b.id {
		return // overheard ACK for someone else
	}
	kuv, ok := b.pairwise[sender]
	if !ok {
		if b.erased {
			return
		}
		kuv = b.pairwiseKey(sender)
		b.pairwise[sender] = kuv
	}
	ctx.ChargeMAC(9)
	if !crypt.VerifyMAC(kuv, pkt[9:], pkt[:9]) {
		return
	}
	b.acked[sender] = true
}

// distributeClusterKey sends this node's cluster key to every ACKed
// neighbor INDIVIDUALLY, each sealed under the pairwise key — LEAP's
// per-neighbor unicast bootstrap cost.
func (b *BootNode) distributeClusterKey(ctx node.Context) {
	// Iterate neighbors in ID order, not map order: transmission order
	// feeds the shared medium's random stream, so map iteration here would
	// make the whole run irreproducible.
	peers := make([]node.ID, 0, len(b.acked))
	for peer := range b.acked {
		peers = append(peers, peer)
	}
	slices.Sort(peers)
	aad := [1]byte{mCKey}
	for _, peer := range peers {
		kuv := b.pairwise[peer]
		nonce := uint64(b.id)<<32 | uint64(peer)
		b.pktBuf = append(b.pktBuf[:0], mCKey)
		b.pktBuf = binary.BigEndian.AppendUint32(b.pktBuf, uint32(b.id))
		b.pktBuf = binary.BigEndian.AppendUint32(b.pktBuf, uint32(peer))
		b.pktBuf = crypt.SealAppend(b.pktBuf, kuv, nonce, aad[:], b.myCK[:])
		ctx.ChargeCipher(crypt.KeySize)
		ctx.ChargeMAC(crypt.KeySize + 1)
		ctx.Broadcast(b.pktBuf)
	}
}

// onClusterKey decrypts a neighbor's cluster key addressed to us.
func (b *BootNode) onClusterKey(ctx node.Context, pkt []byte) {
	if len(pkt) < 9 {
		return
	}
	sender := node.ID(binary.BigEndian.Uint32(pkt[1:]))
	to := node.ID(binary.BigEndian.Uint32(pkt[5:]))
	if to != b.id {
		return
	}
	kuv, ok := b.pairwise[sender]
	if !ok {
		return
	}
	nonce := uint64(sender)<<32 | uint64(b.id)
	ctx.ChargeMAC(len(pkt) - 9 + 1)
	aad := [1]byte{mCKey}
	body, okOpen := crypt.OpenAppend(b.openBuf[:0], kuv, nonce, aad[:], pkt[9:])
	b.openBuf = body
	if !okOpen || len(body) != crypt.KeySize {
		return
	}
	ctx.ChargeCipher(len(body))
	b.clusterKeys[sender] = crypt.KeyFromBytes(body)
}

// ForgeHello builds the adversary's flood packet claiming the given
// identity, for injection during the discovery window.
func ForgeHello(fakeID uint32) []byte {
	pkt := make([]byte, 5)
	pkt[0] = mHello
	binary.BigEndian.PutUint32(pkt[1:], fakeID)
	return pkt
}
