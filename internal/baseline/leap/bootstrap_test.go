package leap

import (
	"testing"
	"time"

	"repro/internal/crypt"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// bootDeployment runs the LEAP bootstrap to completion on a random
// topology and returns the engine and behaviors.
func bootDeployment(t *testing.T, n int, density float64, seed uint64) (*sim.Engine, []*BootNode, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(xrand.New(seed), topology.Config{N: n, Density: density})
	if err != nil {
		t.Fatal(err)
	}
	var ki crypt.Key
	ki[0] = 0x77
	cfg := DefaultBootConfig()
	nodes := make([]*BootNode, n)
	behaviors := make([]node.Behavior, n)
	for i := range nodes {
		nodes[i] = NewBootNode(cfg, node.ID(i), ki)
		behaviors[i] = nodes[i]
	}
	eng, err := sim.New(sim.Config{Graph: g, Seed: seed}, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	eng.Run(cfg.EraseAt + 200*time.Millisecond)
	return eng, nodes, g
}

func TestBootstrapEstablishesPairwiseKeys(t *testing.T) {
	_, nodes, g := bootDeployment(t, 80, 10, 1)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			ku, okU := nodes[u].Pairwise(node.ID(v))
			kv, okV := nodes[v].Pairwise(node.ID(u))
			if !okU || !okV {
				t.Fatalf("pairwise key missing on link %d-%d", u, v)
			}
			// The cryptographic point: both ends computed the SAME key
			// without ever transmitting it.
			if !ku.Equal(kv) {
				t.Fatalf("pairwise keys disagree on link %d-%d", u, v)
			}
			if !nodes[u].Acked(node.ID(v)) || !nodes[v].Acked(node.ID(u)) {
				t.Fatalf("ACK handshake incomplete on link %d-%d", u, v)
			}
		}
	}
}

func TestBootstrapDistributesClusterKeys(t *testing.T) {
	_, nodes, g := bootDeployment(t, 80, 10, 2)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			got, ok := nodes[u].ClusterKeyOf(node.ID(v))
			if !ok {
				t.Fatalf("node %d missing cluster key of neighbor %d", u, v)
			}
			if !got.Equal(nodes[v].MyClusterKey()) {
				t.Fatalf("node %d holds wrong cluster key for %d", u, v)
			}
		}
	}
}

func TestBootstrapErasesKI(t *testing.T) {
	_, nodes, _ := bootDeployment(t, 40, 8, 3)
	for i, n := range nodes {
		if !n.Erased() {
			t.Fatalf("node %d did not erase KI", i)
		}
		if !n.ki.IsZero() {
			t.Fatalf("node %d KI not zeroized", i)
		}
	}
}

func TestBootstrapMessageCost(t *testing.T) {
	// LEAP's empirical setup cost on the same radio as the paper's
	// protocol: 1 HELLO + deg ACKs + deg cluster-key unicasts per node.
	eng, _, g := bootDeployment(t, 100, 10, 4)
	totalTx := 0
	for i := 0; i < g.N(); i++ {
		totalTx += eng.Meter(i).TxCount()
	}
	want := g.N() + 2*2*g.Edges() // n HELLOs + (2 ACK + 2 CKEY) per undirected edge
	if totalTx != want {
		t.Fatalf("total transmissions %d, want %d", totalTx, want)
	}
	perNode := float64(totalTx) / float64(g.N())
	// Degree ~10 => ~21 messages per node, versus ~1.15 for the paper's
	// protocol on the same topology class.
	if perNode < 15 {
		t.Fatalf("LEAP setup cost %v msgs/node implausibly low", perNode)
	}
}

func TestHelloFloodInflatesVictimLive(t *testing.T) {
	// The Section III attack, executed on the radio: forged HELLOs during
	// discovery force the victim to compute and store pairwise keys.
	g, err := topology.Generate(xrand.New(5), topology.Config{N: 60, Density: 10})
	if err != nil {
		t.Fatal(err)
	}
	var ki crypt.Key
	ki[0] = 0x55
	cfg := DefaultBootConfig()
	nodes := make([]*BootNode, g.N())
	behaviors := make([]node.Behavior, g.N())
	for i := range nodes {
		nodes[i] = NewBootNode(cfg, node.ID(i), ki)
		behaviors[i] = nodes[i]
	}
	eng, err := sim.New(sim.Config{Graph: g, Seed: 5}, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	victim := 30
	// The adversary's radio sits at a position adjacent to the victim
	// (InjectAt transmits FROM a position, reaching its neighbors).
	nbs := g.Neighbors(victim)
	if len(nbs) == 0 {
		t.Skip("isolated victim")
	}
	attackPos := int(nbs[0])
	const fakes = 500
	for k := 0; k < fakes; k++ {
		k := k
		at := time.Duration(k) * 200 * time.Microsecond // inside discovery
		eng.Schedule(at, func() {
			eng.InjectAt(attackPos, node.ID(1_000_000+k), ForgeHello(uint32(1_000_000+k)))
		})
	}
	eng.Run(cfg.EraseAt + 200*time.Millisecond)

	deg := g.Degree(victim)
	if got := nodes[victim].PairwiseCount(); got < deg+fakes {
		t.Fatalf("victim stores %d pairwise keys, want >= %d", got, deg+fakes)
	}
	// And the victim wasted a transmission ACKing every forgery.
	if tx := eng.Meter(victim).TxCount(); tx < fakes {
		t.Fatalf("victim transmitted %d times; flood should force >= %d ACKs", tx, fakes)
	}
}

func TestPostEraseHelloIgnored(t *testing.T) {
	// After Tmin (KI erased) forged HELLOs are ignored — LEAP's own
	// defense; the paper's attack works because it strikes DURING the
	// discovery window.
	eng, nodes, g := bootDeployment(t, 40, 8, 6)
	victim := 20
	nbs := g.Neighbors(victim)
	if len(nbs) == 0 {
		t.Skip("isolated victim")
	}
	attackPos := int(nbs[0])
	before := nodes[victim].PairwiseCount()
	eng.Schedule(eng.Now()+time.Millisecond, func() {
		eng.InjectAt(attackPos, node.ID(999999), ForgeHello(999999))
	})
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if nodes[victim].PairwiseCount() != before {
		t.Fatal("post-erase HELLO still computed a key")
	}
}

func TestForgedAckRejected(t *testing.T) {
	// An ACK with a bad MAC must not mark the sender as a neighbor.
	g, err := topology.Generate(xrand.New(7), topology.Config{N: 30, Density: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ki crypt.Key
	ki[0] = 0x11
	cfg := DefaultBootConfig()
	nodes := make([]*BootNode, g.N())
	behaviors := make([]node.Behavior, g.N())
	for i := range nodes {
		nodes[i] = NewBootNode(cfg, node.ID(i), ki)
		behaviors[i] = nodes[i]
	}
	eng, err := sim.New(sim.Config{Graph: g, Seed: 7}, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	victim := 10
	// Forged ACK claiming to be node 5 answering the victim, garbage MAC.
	ack := make([]byte, 9+crypt.MACSize)
	ack[0] = mAck
	ack[1], ack[2], ack[3], ack[4] = 0, 0, 0, 5
	ack[5], ack[6], ack[7], ack[8] = 0, 0, 0, byte(victim)
	ack[9] = 0xBA
	nbs := g.Neighbors(victim)
	if len(nbs) == 0 {
		t.Skip("isolated victim")
	}
	attackPos := int(nbs[0])
	eng.Schedule(10*time.Millisecond, func() {
		eng.InjectAt(attackPos, node.ID(5), ack)
	})
	eng.Run(cfg.EraseAt + 100*time.Millisecond)
	// Node 5 may legitimately have ACKed if adjacent; use a non-adjacent
	// identity instead for a clean assertion.
	if !g.Adjacent(victim, 5) && nodes[victim].Acked(5) {
		t.Fatal("forged ACK accepted")
	}
}
