// Package leap models LEAP (Zhu, Setia, Jajodia [11]) to the fidelity the
// paper's comparison requires: its key inventory, its bootstrap cost, and
// the HELLO-flood attack on its neighbor-discovery phase that the paper
// describes in Section III.
//
// In LEAP every node u derives, from a short-lived master key Km, a
// per-node key Ku = F(Km, u); during neighbor discovery u and each
// neighbor v establish the pairwise key Kuv = F(Kv, u). u then generates
// a cluster key and sends it to every neighbor individually, encrypted
// under the pairwise keys — the "more expensive bootstrapping phase and
// increased storage requirements as each node must set up and store a
// number of pair-wise and cluster keys that is proportional to its actual
// neighbors" the paper contrasts itself against.
//
// The attack: nothing rate-limits HELLOs during discovery, so "an
// attacker [may] broadcast a large number of HELLO messages ... The
// recipient node will compute all the pairwise secret keys according to
// the protocol," and a later capture of that node hands the adversary "a
// key that is shared between the compromised node and all other nodes in
// the network."
package leap

import (
	"repro/internal/baseline"
	"repro/internal/topology"
)

// Scheme is a LEAP instance over a topology.
type Scheme struct {
	g *topology.Graph
	// extraPairwise counts pairwise keys a node was tricked into
	// computing for nonexistent neighbors (HELLO flood), per node.
	extraPairwise []int
	// masterLeaked marks nodes captured before Km was erased.
	floodVictims map[int]bool
}

// New instantiates LEAP after a clean bootstrap (no attack yet).
func New(g *topology.Graph) *Scheme {
	return &Scheme{
		g:             g,
		extraPairwise: make([]int, g.N()),
		floodVictims:  make(map[int]bool),
	}
}

// Name implements baseline.Scheme.
func (s *Scheme) Name() string { return "leap" }

// KeysPerNode implements baseline.Scheme. A LEAP node stores its
// individual key (shared with the BS), one pairwise key per neighbor, its
// own cluster key, each neighbor's cluster key, and the group key:
// 2 + 2*degree keys, plus any flood-induced extras — storage proportional
// to the neighborhood, unlike the paper's handful of cluster keys.
func (s *Scheme) KeysPerNode(u int) int {
	return 2 + 2*s.g.Degree(u) + s.extraPairwise[u]
}

// BroadcastTransmissions implements baseline.Scheme: steady-state LEAP
// also has cluster keys, so one transmission suffices. (Its costs are in
// bootstrap and storage, not per-broadcast.)
func (s *Scheme) BroadcastTransmissions(u int) int { return 1 }

// SetupMessages returns node u's transmissions during bootstrap: one
// HELLO, one ACK per neighbor during pairwise establishment, and one
// cluster-key delivery per neighbor (each encrypted under a different
// pairwise key, so they cannot be batched into one broadcast).
func (s *Scheme) SetupMessages(u int) int {
	return 1 + 2*s.g.Degree(u)
}

// HelloFlood mounts the Section III attack against victim: the adversary
// broadcasts fakeCount HELLOs with fresh identities during neighbor
// discovery. The victim dutifully computes and stores a pairwise key for
// each, and is marked so a later capture is treated as revealing keys
// "shared with all other nodes". It returns the victim's key count after
// the attack.
func (s *Scheme) HelloFlood(victim, fakeCount int) int {
	s.extraPairwise[victim] += fakeCount
	s.floodVictims[victim] = true
	return s.KeysPerNode(victim)
}

// Capture implements baseline.Scheme. Capturing node c reveals its
// pairwise keys, so every link touching c is lost — but links between
// uncaptured nodes stay secure (LEAP, like the paper's protocol, offers
// deterministic locality) UNLESS a captured node was a HELLO-flood victim:
// then the adversary holds pairwise keys the victim computed toward
// arbitrary identities and can impersonate those identities to every
// uncaptured node, compromising all their incident links.
func (s *Scheme) Capture(captured []int) baseline.CompromiseReport {
	set := baseline.CaptureSet(captured)
	total := baseline.DirectedLinks(s.g, set)
	floodCaptured := false
	for _, c := range captured {
		if s.floodVictims[c] {
			floodCaptured = true
			break
		}
	}
	if floodCaptured {
		return baseline.CompromiseReport{CompromisedLinks: total, TotalLinks: total}
	}
	// Clean LEAP: compromise is confined to the captured nodes' own
	// links, which the directed-link metric already excludes. The
	// captured nodes' cluster keys do let the adversary read broadcasts
	// from the captured nodes' direct neighbors (they encrypt under their
	// own cluster keys, which the captured node holds) — the same local
	// breach as the paper's protocol.
	compromised := 0
	neighborClusters := make(map[int]bool) // nodes whose cluster key leaked
	for _, c := range captured {
		neighborClusters[c] = true
		for _, v := range s.g.Neighbors(c) {
			neighborClusters[int(v)] = true
		}
	}
	for u := 0; u < s.g.N(); u++ {
		if set[u] {
			continue
		}
		if !neighborClusters[u] {
			continue
		}
		// u's cluster key is in the adversary's hands: broadcasts from u
		// are readable on every link u->v.
		for _, v := range s.g.Neighbors(u) {
			if !set[int(v)] {
				compromised++
			}
		}
	}
	return baseline.CompromiseReport{CompromisedLinks: compromised, TotalLinks: total}
}
