package sim

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// echo is a test behavior: broadcasts a greeting on start, counts
// receptions, and optionally rebroadcasts once.
type echo struct {
	started     int
	received    []node.ID
	packets     [][]byte
	timers      []node.Tag
	rebroadcast bool
	sendOnStart []byte
}

func (e *echo) Start(ctx node.Context) {
	e.started++
	if e.sendOnStart != nil {
		ctx.Broadcast(e.sendOnStart)
	}
}

func (e *echo) Receive(ctx node.Context, from node.ID, pkt []byte) {
	e.received = append(e.received, from)
	e.packets = append(e.packets, append([]byte(nil), pkt...))
	if e.rebroadcast {
		e.rebroadcast = false
		ctx.Broadcast(pkt)
	}
}

func (e *echo) Timer(ctx node.Context, tag node.Tag) {
	e.timers = append(e.timers, tag)
}

// lineGraph builds a path topology 0-1-2-...-(n-1).
func lineGraph(n int) *topology.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return topology.FromPositions(pos, float64(n+1), 1.1, geom.Planar)
}

func newEngine(t *testing.T, g *topology.Graph, behaviors []node.Behavior, cfg Config) *Engine {
	t.Helper()
	cfg.Graph = g
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng, err := New(cfg, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestBroadcastReachesNeighborsOnly(t *testing.T) {
	g := lineGraph(4)
	bs := []*echo{{sendOnStart: []byte("hi")}, {}, {}, {}}
	behaviors := make([]node.Behavior, 4)
	for i, b := range bs {
		behaviors[i] = b
	}
	eng := newEngine(t, g, behaviors, Config{})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if len(bs[1].received) != 1 || bs[1].received[0] != 0 {
		t.Fatalf("node 1 received %v", bs[1].received)
	}
	if len(bs[2].received) != 0 || len(bs[3].received) != 0 {
		t.Fatal("broadcast leaked beyond radio range")
	}
	if string(bs[1].packets[0]) != "hi" {
		t.Fatalf("payload = %q", bs[1].packets[0])
	}
}

func TestMultiHopViaRebroadcast(t *testing.T) {
	g := lineGraph(5)
	bs := make([]*echo, 5)
	behaviors := make([]node.Behavior, 5)
	for i := range bs {
		bs[i] = &echo{rebroadcast: i > 0}
		behaviors[i] = bs[i]
	}
	bs[0].sendOnStart = []byte("wave")
	eng := newEngine(t, g, behaviors, Config{})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if len(bs[4].received) == 0 {
		t.Fatal("message never reached the end of the line")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []node.ID {
		g := lineGraph(6)
		bs := make([]*echo, 6)
		behaviors := make([]node.Behavior, 6)
		for i := range bs {
			bs[i] = &echo{rebroadcast: true}
			behaviors[i] = bs[i]
		}
		bs[0].sendOnStart = []byte("x")
		bs[3].sendOnStart = []byte("y")
		eng := newEngine(t, g, behaviors, Config{Seed: 42, Loss: 0.1})
		eng.Boot(0)
		if _, err := eng.RunUntilIdle(10000); err != nil {
			t.Fatal(err)
		}
		var log []node.ID
		for _, b := range bs {
			log = append(log, b.received...)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d", i)
		}
	}
}

func TestTimersFireInOrder(t *testing.T) {
	g := lineGraph(1)
	b := &echo{}
	eng := newEngine(t, g, []node.Behavior{b}, Config{})
	eng.Boot(0)
	eng.Schedule(0, func() {
		h := eng.hosts[0]
		h.SetTimer(30*time.Millisecond, 3)
		h.SetTimer(10*time.Millisecond, 1)
		h.SetTimer(20*time.Millisecond, 2)
	})
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(b.timers) != 3 || b.timers[0] != 1 || b.timers[1] != 2 || b.timers[2] != 3 {
		t.Fatalf("timer order = %v", b.timers)
	}
}

func TestCancelTimer(t *testing.T) {
	g := lineGraph(1)
	b := &echo{}
	eng := newEngine(t, g, []node.Behavior{b}, Config{})
	eng.Boot(0)
	eng.Schedule(0, func() {
		h := eng.hosts[0]
		tid := h.SetTimer(10*time.Millisecond, 1)
		h.SetTimer(20*time.Millisecond, 2)
		h.CancelTimer(tid)
		h.CancelTimer(node.TimerID(9999)) // unknown: no-op
	})
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(b.timers) != 1 || b.timers[0] != 2 {
		t.Fatalf("timers = %v, want only tag 2", b.timers)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	g := lineGraph(1)
	b := &echo{}
	eng := newEngine(t, g, []node.Behavior{b}, Config{})
	eng.Boot(0)
	eng.Schedule(5*time.Millisecond, func() { eng.hosts[0].SetTimer(0, 1) })
	eng.Schedule(50*time.Millisecond, func() { eng.hosts[0].SetTimer(0, 2) })
	eng.Run(10 * time.Millisecond)
	if len(b.timers) != 1 {
		t.Fatalf("timers fired by t=10ms: %v", b.timers)
	}
	if eng.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", eng.Now())
	}
	if eng.Pending() == 0 {
		t.Fatal("future event lost")
	}
	eng.Run(100 * time.Millisecond)
	if len(b.timers) != 2 {
		t.Fatalf("timers after full run: %v", b.timers)
	}
}

func TestKilledNodeReceivesNothing(t *testing.T) {
	g := lineGraph(2)
	sender := &echo{sendOnStart: []byte("boo")}
	victim := &echo{}
	eng := newEngine(t, g, []node.Behavior{sender, victim}, Config{})
	eng.Boot(0)
	eng.Kill(1)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(victim.received) != 0 {
		t.Fatal("dead node received a packet")
	}
	if eng.Alive(1) {
		t.Fatal("killed node reported alive")
	}
}

func TestDieStopsCallbacks(t *testing.T) {
	g := lineGraph(2)
	// Node 1 dies in Start; the packet from node 0 arrives afterwards.
	type dier struct{ echo }
	d := &dier{}
	dBehavior := node.Behavior(behaviorFuncs{
		start:   func(ctx node.Context) { ctx.Die() },
		receive: d.Receive,
		timer:   d.Timer,
	})
	sender := &echo{sendOnStart: []byte("late")}
	eng := newEngine(t, g, []node.Behavior{sender, dBehavior}, Config{})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(d.received) != 0 {
		t.Fatal("node received packet after Die")
	}
}

// behaviorFuncs adapts closures to node.Behavior for tests.
type behaviorFuncs struct {
	start   func(node.Context)
	receive func(node.Context, node.ID, []byte)
	timer   func(node.Context, node.Tag)
}

func (b behaviorFuncs) Start(ctx node.Context) { b.start(ctx) }
func (b behaviorFuncs) Receive(ctx node.Context, from node.ID, pkt []byte) {
	b.receive(ctx, from, pkt)
}
func (b behaviorFuncs) Timer(ctx node.Context, tag node.Tag) { b.timer(ctx, tag) }

func TestLossDropsRoughlyExpectedFraction(t *testing.T) {
	// Star: center 0 broadcasts many packets to 1..k over a lossy medium.
	const k, packets, loss = 4, 500, 0.3
	pos := make([]geom.Point, k+1)
	pos[0] = geom.Point{X: 5, Y: 5}
	for i := 1; i <= k; i++ {
		pos[i] = geom.Point{X: 5 + 0.1*float64(i), Y: 5}
	}
	g := topology.FromPositions(pos, 10, 1.0, geom.Planar)
	bs := make([]*echo, k+1)
	behaviors := make([]node.Behavior, k+1)
	for i := range bs {
		bs[i] = &echo{}
		behaviors[i] = bs[i]
	}
	eng := newEngine(t, g, behaviors, Config{Seed: 9, Loss: loss})
	eng.Boot(0)
	for p := 0; p < packets; p++ {
		eng.Schedule(time.Duration(p)*time.Millisecond, func() {
			eng.hosts[0].Broadcast([]byte("p"))
		})
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 1; i <= k; i++ {
		total += len(bs[i].received)
	}
	got := float64(total) / float64(packets*k)
	if got < 0.6 || got > 0.8 {
		t.Fatalf("delivery rate %v, want ~0.7", got)
	}
}

func TestEnergyAccounting(t *testing.T) {
	g := lineGraph(2)
	sender := &echo{sendOnStart: make([]byte, 40)}
	rcv := &echo{}
	eng := newEngine(t, g, []node.Behavior{sender, rcv}, Config{})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if eng.Meter(0).TxCount() != 1 || eng.Meter(0).Tx() <= 0 {
		t.Fatalf("sender meter: %v", eng.Meter(0))
	}
	if eng.Meter(1).RxCount() != 1 || eng.Meter(1).Rx() <= 0 {
		t.Fatalf("receiver meter: %v", eng.Meter(1))
	}
	if eng.Meter(1).TxCount() != 0 {
		t.Fatal("receiver charged for a transmission")
	}
}

func TestTrace(t *testing.T) {
	g := lineGraph(3)
	bs := []*echo{{sendOnStart: []byte("abc")}, {}, {}}
	behaviors := []node.Behavior{bs[0], bs[1], bs[2]}
	var events []TraceEvent
	cfg := Config{Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := newEngine(t, g, behaviors, cfg)
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 { // node 0 has one neighbor on the line
		t.Fatalf("trace saw %d deliveries, want 1", len(events))
	}
	if events[0].From != 0 || events[0].To != 1 || events[0].Size != 3 || events[0].Lost {
		t.Fatalf("trace event = %+v", events[0])
	}
}

func TestInjectAt(t *testing.T) {
	g := lineGraph(3)
	bs := []*echo{{}, {}, {}}
	behaviors := []node.Behavior{bs[0], bs[1], bs[2]}
	eng := newEngine(t, g, behaviors, Config{})
	eng.Boot(0)
	eng.Schedule(time.Millisecond, func() {
		eng.InjectAt(1, node.ID(777), []byte("evil"))
	})
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(bs[0].received) != 1 || bs[0].received[0] != 777 {
		t.Fatalf("node 0 received %v", bs[0].received)
	}
	if len(bs[2].received) != 1 || bs[2].received[0] != 777 {
		t.Fatalf("node 2 received %v", bs[2].received)
	}
	if len(bs[1].received) != 0 {
		t.Fatal("injection delivered to its own position")
	}
	// Injection must not charge any defender meter for transmission.
	for i := 0; i < 3; i++ {
		if eng.Meter(i).TxCount() != 0 {
			t.Fatalf("node %d charged tx for adversary injection", i)
		}
	}
}

func TestBootNodeLateDeployment(t *testing.T) {
	g := lineGraph(3)
	early := &echo{}
	late := &echo{sendOnStart: []byte("fresh")}
	// Position 2 reserved (nil behavior).
	eng := newEngine(t, g, []node.Behavior{early, &echo{}, nil}, Config{})
	eng.Boot(0)
	if eng.Alive(2) {
		t.Fatal("reserved position alive before boot")
	}
	eng.BootNode(2, late, 50*time.Millisecond)
	if _, err := eng.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if late.started != 1 {
		t.Fatal("late node never started")
	}
	if !eng.Alive(2) {
		t.Fatal("late node not alive")
	}
}

func TestPacketImmutabilityAcrossReceivers(t *testing.T) {
	// A receiver that mutates its packet must not affect other receivers.
	pos := []geom.Point{{X: 1, Y: 1}, {X: 1.5, Y: 1}, {X: 0.5, Y: 1}}
	g := topology.FromPositions(pos, 4, 1.0, geom.Planar)
	var got []byte
	mutator := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(_ node.Context, _ node.ID, pkt []byte) { pkt[0] = 'X' },
		timer:   func(node.Context, node.Tag) {},
	}
	observer := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(_ node.Context, _ node.ID, pkt []byte) { got = append([]byte(nil), pkt...) },
		timer:   func(node.Context, node.Tag) {},
	}
	sender := &echo{sendOnStart: []byte("ok")}
	eng := newEngine(t, g, []node.Behavior{sender, mutator, observer}, Config{Jitter: 1})
	eng.Boot(0)
	// The sender scribbling over its buffer after Broadcast must not be
	// visible to receivers either.
	eng.Schedule(0, func() { sender.sendOnStart[1] = 'Z' })
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("observer saw %q; deliveries are not isolated", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := lineGraph(2)
	if _, err := New(Config{Graph: g}, make([]node.Behavior, 3)); err == nil {
		t.Fatal("behavior count mismatch accepted")
	}
}

func TestRunUntilIdleEventLimit(t *testing.T) {
	g := lineGraph(1)
	b := &echo{}
	eng := newEngine(t, g, []node.Behavior{b}, Config{})
	eng.Boot(0)
	// A self-perpetuating timer chain.
	var arm func()
	arm = func() {
		eng.hosts[0].SetTimer(time.Millisecond, 0)
		eng.Schedule(eng.Now()+time.Millisecond, arm)
	}
	eng.Schedule(0, arm)
	if _, err := eng.RunUntilIdle(50); err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestMediumRandomnessIndependentOfNodeRand(t *testing.T) {
	// Consuming a node's private stream must not perturb medium behavior.
	run := func(consume bool) int {
		g := lineGraph(3)
		bs := make([]*echo, 3)
		behaviors := make([]node.Behavior, 3)
		for i := range bs {
			bs[i] = &echo{}
			behaviors[i] = bs[i]
		}
		eng := newEngine(t, g, behaviors, Config{Seed: 5, Loss: 0.5})
		eng.Boot(0)
		if consume {
			eng.Schedule(0, func() {
				for i := 0; i < 100; i++ {
					eng.hosts[1].Rand().Uint64()
				}
			})
		}
		for p := 0; p < 100; p++ {
			eng.Schedule(time.Duration(p)*time.Millisecond, func() {
				eng.hosts[0].Broadcast([]byte("q"))
			})
		}
		if _, err := eng.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		return len(bs[1].received)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("medium outcomes differ when node stream consumed: %d vs %d", a, b)
	}
}

func TestSplitStreamsPerNodeDiffer(t *testing.T) {
	g := lineGraph(2)
	eng := newEngine(t, g, []node.Behavior{&echo{}, &echo{}}, Config{Seed: 8})
	a := eng.hosts[0].Rand().Uint64()
	b := eng.hosts[1].Rand().Uint64()
	if a == b {
		t.Fatal("two nodes share a random stream")
	}
}

func BenchmarkBroadcastDelivery(b *testing.B) {
	rng := xrand.New(1)
	g, err := topology.Generate(rng, topology.Config{N: 1000, Density: 12.5, Metric: geom.Torus})
	if err != nil {
		b.Fatal(err)
	}
	behaviors := make([]node.Behavior, g.N())
	sink := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(node.Context, node.ID, []byte) {},
		timer:   func(node.Context, node.Tag) {},
	}
	for i := range behaviors {
		behaviors[i] = sink
	}
	eng, err := New(Config{Graph: g, Seed: 1}, behaviors)
	if err != nil {
		b.Fatal(err)
	}
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(0); err != nil {
		b.Fatal(err)
	}
	pkt := make([]byte, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.hosts[i%g.N()].Broadcast(pkt)
		if _, err := eng.RunUntilIdle(0); err != nil {
			b.Fatal(err)
		}
	}
}
