package sim

// Property-based tests for the sharded engine's cross-shard merge: a
// random event schedule — dense broadcast storms and timers quantized
// onto a coarse grid so timestamps collide constantly — must produce
// one canonical observable order (trace events, per-node reception
// sequences, timer firings) regardless of shard count, shard
// assignment, or goroutine interleaving. The Makefile race target runs
// this file under -race, so any unsynchronized cross-shard access
// shows up here too.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// stormNode floods the network with colliding traffic: on start it arms
// a timer on a quantized grid; every timer tick broadcasts a packet and
// re-arms; every reception is logged and rebroadcast while its TTL
// lasts. Quantizing all self-scheduled times to the same grid step
// forces many same-timestamp events across unrelated nodes — the merge
// collisions the canonical (time, source, sequence) key must resolve
// identically at every shard count.
type stormNode struct {
	idx      int
	rng      *xrand.RNG
	step     time.Duration
	ticks    int
	maxTicks int
	log      []string // owned by this node's shard; read after Run returns
}

func (s *stormNode) quantized(ctx node.Context) time.Duration {
	// 1-4 grid steps ahead, snapped to the grid so nodes collide.
	n := time.Duration(1 + s.rng.Intn(4))
	at := ctx.Now() + n*s.step
	return at.Truncate(s.step) - ctx.Now()
}

func (s *stormNode) Start(ctx node.Context) {
	s.log = append(s.log, fmt.Sprintf("start@%d", ctx.Now().Nanoseconds()))
	ctx.SetTimer(s.quantized(ctx), node.Tag(1))
}

func (s *stormNode) Receive(ctx node.Context, from node.ID, pkt []byte) {
	s.log = append(s.log, fmt.Sprintf("rx@%d from=%d ttl=%d len=%d",
		ctx.Now().Nanoseconds(), from, pkt[0], len(pkt)))
	if ttl := pkt[0]; ttl > 0 {
		fwd := append([]byte(nil), pkt...)
		fwd[0] = ttl - 1
		ctx.Broadcast(fwd)
	}
}

func (s *stormNode) Timer(ctx node.Context, tag node.Tag) {
	s.ticks++
	s.log = append(s.log, fmt.Sprintf("timer@%d tag=%d", ctx.Now().Nanoseconds(), tag))
	pkt := []byte{1, byte(s.idx), byte(s.ticks)}
	ctx.Broadcast(pkt)
	if s.ticks < s.maxTicks {
		ctx.SetTimer(s.quantized(ctx), node.Tag(1))
	}
}

// stormTrace runs one storm and returns its full observable history:
// the global trace in delivery order plus each node's private log.
func stormTrace(t *testing.T, seed uint64, n, shards int, cfg Config) []string {
	t.Helper()
	rng := xrand.New(seed)
	g, err := topology.Generate(rng, topology.Config{N: n, Density: 8, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*stormNode, n)
	behaviors := make([]node.Behavior, n)
	for i := range nodes {
		nodes[i] = &stormNode{
			idx:      i,
			rng:      xrand.New(seed ^ uint64(i)*0x9e3779b97f4a7c15),
			step:     5 * time.Millisecond,
			maxTicks: 3,
		}
		behaviors[i] = nodes[i]
	}
	var trace []string
	cfg.Graph = g
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.Trace = func(ev TraceEvent) {
		trace = append(trace, fmt.Sprintf("at=%d from=%d to=%d lost=%v pkt=%x",
			ev.At.Nanoseconds(), ev.From, ev.To, ev.Lost, ev.Pkt))
	}
	eng, err := New(cfg, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	eng.Boot(0)
	eng.Run(120 * time.Millisecond)
	out := trace
	for i, sn := range nodes {
		for _, line := range sn.log {
			out = append(out, fmt.Sprintf("node=%d %s", i, line))
		}
	}
	return out
}

func diffTraces(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: trace diverges at %d:\nwant %s\ngot  %s", label, i, want[i], got[i])
		}
	}
}

// TestShardMergeCanonicalOrder is the core property: for a table of
// seeds and radio configurations, the observable history at shard
// counts 2, 3, 4, and 7 is identical to the single-shard history —
// colliding timestamps, loss draws, jitter draws, collision corruption
// and all.
func TestShardMergeCanonicalOrder(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero-jitter", Config{Jitter: 1}}, // everything lands on the grid
		{"default-jitter", Config{}},
		{"lossy", Config{Loss: 0.3}},
		{"collisions", Config{Collisions: true, Jitter: 3 * time.Millisecond}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []uint64{1, 42, 9001} {
				ref := stormTrace(t, seed, 60, 1, tc.cfg)
				if len(ref) < 100 {
					t.Fatalf("seed %d: storm too quiet (%d events) to exercise the merge", seed, len(ref))
				}
				for _, shards := range []int{2, 3, 4, 7} {
					got := stormTrace(t, seed, 60, shards, tc.cfg)
					diffTraces(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), ref, got)
				}
			}
		})
	}
}

// TestShardMergeInterleavingStability reruns the same sharded storm
// several times: with the schedule fixed, any divergence can only come
// from goroutine interleaving leaking into the merge — the bug class
// the per-epoch mailbox exchange plus canonical sort exists to prevent.
// Under -race this doubles as the harness that drives concurrent shard
// goroutines through every barrier path.
func TestShardMergeInterleavingStability(t *testing.T) {
	cfg := Config{Loss: 0.1, Jitter: 2 * time.Millisecond}
	ref := stormTrace(t, 7, 80, 4, cfg)
	for run := 1; run <= 4; run++ {
		got := stormTrace(t, 7, 80, 4, cfg)
		diffTraces(t, fmt.Sprintf("rerun %d", run), ref, got)
	}
}

// TestShardAssignmentIrrelevance pins the stronger contract: the merge
// order depends only on the canonical key, never on which shard owns a
// node. A round-robin assignment (pathological for locality — nearly
// every delivery crosses shards) must reproduce the stripe assignment's
// bytes exactly.
func TestShardAssignmentIrrelevance(t *testing.T) {
	seed := uint64(13)
	rng := xrand.New(seed)
	g, err := topology.Generate(rng, topology.Config{N: 50, Density: 8, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	run := func(shardOf []int) []string {
		nodes := make([]*stormNode, g.N())
		behaviors := make([]node.Behavior, g.N())
		for i := range nodes {
			nodes[i] = &stormNode{
				idx:      i,
				rng:      xrand.New(seed ^ uint64(i)*0x9e3779b97f4a7c15),
				step:     5 * time.Millisecond,
				maxTicks: 3,
			}
			behaviors[i] = nodes[i]
		}
		var trace []string
		cfg := Config{
			Graph: g, Seed: seed, Shards: 3, ShardOf: shardOf, Loss: 0.2,
			Trace: func(ev TraceEvent) {
				trace = append(trace, fmt.Sprintf("at=%d from=%d to=%d lost=%v pkt=%x",
					ev.At.Nanoseconds(), ev.From, ev.To, ev.Lost, ev.Pkt))
			},
		}
		eng, err := New(cfg, behaviors)
		if err != nil {
			t.Fatal(err)
		}
		eng.Boot(0)
		eng.Run(120 * time.Millisecond)
		for i, sn := range nodes {
			for _, line := range sn.log {
				trace = append(trace, fmt.Sprintf("node=%d %s", i, line))
			}
		}
		return trace
	}
	roundRobin := make([]int, g.N())
	for i := range roundRobin {
		roundRobin[i] = i % 3
	}
	diffTraces(t, "round-robin vs stripes", run(nil), run(roundRobin))
}
