package sim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
)

// runLog captures everything observable about a run: who delivered what to
// whom, in order, plus per-node energy. Two runs are equivalent iff their
// logs match byte for byte.
type runLog struct {
	froms   []node.ID
	packets [][]byte
	tx, rx  []int
}

// pooledScenario runs a lossy multi-sender rebroadcast storm — the shape
// that stresses every pool path (arena reuse across overlapping deliveries,
// event recycling under a deep queue, timers) — and returns its log.
func pooledScenario(t *testing.T, cfg Config) runLog {
	t.Helper()
	const n = 8
	g := lineGraph(n)
	bs := make([]*echo, n)
	behaviors := make([]node.Behavior, n)
	for i := range bs {
		bs[i] = &echo{rebroadcast: true}
		behaviors[i] = bs[i]
	}
	bs[0].sendOnStart = []byte("alpha-payload")
	bs[n-1].sendOnStart = []byte("omega")
	cfg.Seed = 77
	cfg.Loss = 0.2
	cfg.Jitter = time.Millisecond
	eng := newEngine(t, g, behaviors, cfg)
	eng.Boot(0)
	for p := 0; p < 40; p++ {
		p := p
		eng.Schedule(time.Duration(p)*time.Millisecond, func() {
			eng.hosts[p%n].Broadcast([]byte{byte(p), 'x', 'y'})
			eng.hosts[p%n].SetTimer(time.Millisecond, node.Tag(p))
		})
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	var log runLog
	for i, b := range bs {
		log.froms = append(log.froms, b.received...)
		log.packets = append(log.packets, b.packets...)
		log.tx = append(log.tx, eng.Meter(i).TxCount())
		log.rx = append(log.rx, eng.Meter(i).RxCount())
	}
	return log
}

// TestPooledMatchesUnpooled pins the byte-equivalence contract at the
// engine level: buffer and event pooling (and poisoning, which recycles
// more aggressively) must not change a single observable byte of a run.
func TestPooledMatchesUnpooled(t *testing.T) {
	pooled := pooledScenario(t, Config{})
	unpooled := pooledScenario(t, Config{DisablePooling: true})
	poisoned := pooledScenario(t, Config{PoisonRecycled: true})
	for name, got := range map[string]runLog{"DisablePooling": unpooled, "PoisonRecycled": poisoned} {
		if len(got.froms) != len(pooled.froms) {
			t.Fatalf("%s: %d deliveries vs %d pooled", name, len(got.froms), len(pooled.froms))
		}
		for i := range pooled.froms {
			if got.froms[i] != pooled.froms[i] {
				t.Fatalf("%s: delivery %d from %d, pooled saw %d", name, i, got.froms[i], pooled.froms[i])
			}
			if !bytes.Equal(got.packets[i], pooled.packets[i]) {
				t.Fatalf("%s: delivery %d payload %q, pooled saw %q", name, i, got.packets[i], pooled.packets[i])
			}
		}
		for i := range pooled.tx {
			if got.tx[i] != pooled.tx[i] || got.rx[i] != pooled.rx[i] {
				t.Fatalf("%s: node %d tx/rx %d/%d, pooled %d/%d",
					name, i, got.tx[i], got.rx[i], pooled.tx[i], pooled.rx[i])
			}
		}
	}
}

// TestPoisonRecycledClobbersRetainedPacket is the vet test for the buffer
// ownership contract: a Receive callback that illegally retains its pkt
// slice past return sees the bytes overwritten with the 0xDB poison
// pattern, turning a silent aliasing bug into a loud failure.
func TestPoisonRecycledClobbersRetainedPacket(t *testing.T) {
	g := lineGraph(2)
	var stolen []byte
	thief := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(_ node.Context, _ node.ID, pkt []byte) { stolen = pkt },
		timer:   func(node.Context, node.Tag) {},
	}
	sender := &echo{sendOnStart: []byte("secret")}
	eng := newEngine(t, g, []node.Behavior{sender, thief}, Config{PoisonRecycled: true})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if stolen == nil {
		t.Fatal("thief never received a packet")
	}
	for i, b := range stolen {
		if b != 0xDB {
			t.Fatalf("retained byte %d = %#x, want 0xDB poison; retention went undetected", i, b)
		}
	}
}

// TestPoisonOffRetainedPacketIntact is the control for the vet test: the
// poison pattern comes from PoisonRecycled, not from recycling itself —
// without it a retained buffer keeps its bytes until reuse, which is
// exactly why retention bugs hide.
func TestPoisonOffRetainedPacketIntact(t *testing.T) {
	g := lineGraph(2)
	var stolen []byte
	thief := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(_ node.Context, _ node.ID, pkt []byte) { stolen = pkt },
		timer:   func(node.Context, node.Tag) {},
	}
	sender := &echo{sendOnStart: []byte("secret")}
	eng := newEngine(t, g, []node.Behavior{sender, thief}, Config{})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if string(stolen) != "secret" {
		t.Fatalf("retained packet = %q", stolen)
	}
}

// TestDieAndBatteryDeathShareBookkeeping is the regression test for the
// Die() bypass bug: a behavior calling Context.Die used to flip the alive
// bit directly, skipping the deaths counter and the OnDeath callback that
// battery-accounting deaths go through. Both paths must now agree.
func TestDieAndBatteryDeathShareBookkeeping(t *testing.T) {
	reg := obs.NewRegistry()
	g := lineGraph(3)
	var deaths []int
	suicidal := behaviorFuncs{
		start:   func(ctx node.Context) { ctx.Die() },
		receive: func(node.Context, node.ID, []byte) {},
		timer:   func(node.Context, node.Tag) {},
	}
	spender := &echo{}
	eng := newEngine(t, g, []node.Behavior{spender, suicidal, &echo{}}, Config{
		Battery: 500,
		OnDeath: func(i int, _ time.Duration) { deaths = append(deaths, i) },
		Obs:     reg.Scope("test", 0),
	})
	eng.Boot(0)
	for k := 0; k < 50; k++ {
		k := k
		eng.Schedule(time.Duration(k)*time.Millisecond, func() {
			eng.hosts[0].Broadcast(make([]byte, 30))
		})
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if eng.Alive(0) || eng.Alive(1) {
		t.Fatalf("alive = %v/%v, want both dead", eng.Alive(0), eng.Alive(1))
	}
	// Node 1 died by Die, node 0 by battery; both must be observed.
	seen := map[int]bool{}
	for _, i := range deaths {
		seen[i] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("OnDeath observed %v, want nodes 0 and 1", deaths)
	}
	if got := eng.m.deaths.Value(); got != uint64(len(deaths)) {
		t.Fatalf("deaths counter = %d, OnDeath fired %d times", got, len(deaths))
	}
	// Engine.Kill is external destruction, not energy death: silent.
	before := eng.m.deaths.Value()
	eng.Kill(2)
	if eng.m.deaths.Value() != before {
		t.Fatal("Engine.Kill counted as an energy death")
	}
	// kill is idempotent: a dead node cannot die twice.
	eng.kill(eng.hosts[1])
	if eng.m.deaths.Value() != before {
		t.Fatal("double death double-counted")
	}
}

// TestBroadcastDeliverAllocFree pins the tentpole at the engine level:
// once the pools are warm, a full broadcast → fan-out → deliver → recycle
// cycle allocates nothing.
func TestBroadcastDeliverAllocFree(t *testing.T) {
	g := lineGraph(5)
	behaviors := make([]node.Behavior, 5)
	sink := behaviorFuncs{
		start:   func(node.Context) {},
		receive: func(node.Context, node.ID, []byte) {},
		timer:   func(node.Context, node.Tag) {},
	}
	for i := range behaviors {
		behaviors[i] = sink
	}
	eng := newEngine(t, g, behaviors, Config{Jitter: time.Millisecond})
	eng.Boot(0)
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 64)
	cycle := func() {
		eng.hosts[2].Broadcast(pkt) // middle of the line: two receivers
		if _, err := eng.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		cycle() // warm the arena, event free-list, and queue capacity
	}
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Fatalf("steady-state broadcast-deliver cycle allocates %.1f times per run, want 0", avg)
	}
}
