package sim

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/topology"
)

// starGraph builds a hub node 0 with k spokes, all mutually in range of
// the hub only... actually spokes are clustered tightly so everyone hears
// everyone: a single collision domain.
func cliqueGraph(k int) *topology.Graph {
	pos := make([]geom.Point, k)
	for i := range pos {
		pos[i] = geom.Point{X: 5 + 0.01*float64(i), Y: 5}
	}
	return topology.FromPositions(pos, 10, 1.0, geom.Planar)
}

func TestSimultaneousSendersCollide(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	s1 := &echo{}
	s2 := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, s1, s2},
		Config{Collisions: true, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	// Both senders transmit a 100-byte packet at the same instant: their
	// arrivals at node 0 overlap well within the 3.2ms airtime.
	pkt := make([]byte, 100)
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 0 {
		t.Fatalf("receiver got %d packets through a collision", len(rcv.received))
	}
	if eng.Collisions(0) < 2 {
		t.Fatalf("collision count at receiver = %d, want >= 2", eng.Collisions(0))
	}
}

func TestSpacedSendersDoNotCollide(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	s1 := &echo{}
	s2 := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, s1, s2},
		Config{Collisions: true, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 100) // 3.2ms airtime
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(20*time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 2 {
		t.Fatalf("receiver got %d packets, want 2", len(rcv.received))
	}
	if eng.Collisions(0) != 0 {
		t.Fatalf("spurious collisions: %d", eng.Collisions(0))
	}
}

func TestTripleOverlapAllLost(t *testing.T) {
	g := cliqueGraph(4)
	rcv := &echo{}
	behaviors := []node.Behavior{rcv, &echo{}, &echo{}, &echo{}}
	eng := newEngine(t, g, behaviors,
		Config{Collisions: true, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 200) // 6.4ms airtime
	for s := 1; s <= 3; s++ {
		s := s
		eng.Schedule(time.Duration(s)*time.Millisecond, func() { eng.hosts[s].Broadcast(pkt) })
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 0 {
		t.Fatalf("receiver got %d packets through a triple collision", len(rcv.received))
	}
}

func TestCollisionModelOffByDefault(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, &echo{}, &echo{}}, Config{Jitter: 1})
	eng.Boot(0)
	pkt := make([]byte, 100)
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 2 {
		t.Fatalf("collision-free medium delivered %d, want 2", len(rcv.received))
	}
}

func TestCollisionEnergyOnlyForCleanReceptions(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, &echo{}, &echo{}},
		Config{Collisions: true, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 100)
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if eng.Meter(0).RxCount() != 0 {
		t.Fatalf("rx energy charged for %d corrupted packets", eng.Meter(0).RxCount())
	}
}

func TestBatteryDepletion(t *testing.T) {
	g := cliqueGraph(2)
	sender := &echo{}
	rcv := &echo{}
	var deaths []int
	eng := newEngine(t, g, []node.Behavior{sender, rcv}, Config{
		Battery: 500, // µJ: a handful of packets
		OnDeath: func(i int, _ time.Duration) { deaths = append(deaths, i) },
	})
	eng.Boot(0)
	for k := 0; k < 50; k++ {
		k := k
		eng.Schedule(time.Duration(k)*time.Millisecond, func() {
			eng.hosts[0].Broadcast(make([]byte, 30))
		})
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if eng.Alive(0) {
		t.Fatal("sender survived 50 transmissions on a 500µJ battery")
	}
	if len(deaths) == 0 || deaths[0] != 0 && deaths[0] != 1 {
		t.Fatalf("deaths = %v", deaths)
	}
	// Transmissions after death must not happen: tx count bounded by
	// budget / per-packet cost (~300µJ each), so far below 50.
	if eng.Meter(0).TxCount() >= 50 {
		t.Fatalf("dead node kept transmitting: %d", eng.Meter(0).TxCount())
	}
}

func TestUnlimitedBatteryByDefault(t *testing.T) {
	g := cliqueGraph(2)
	eng := newEngine(t, g, []node.Behavior{&echo{}, &echo{}}, Config{})
	eng.Boot(0)
	for k := 0; k < 200; k++ {
		k := k
		eng.Schedule(time.Duration(k)*time.Millisecond, func() {
			eng.hosts[0].Broadcast(make([]byte, 100))
		})
	}
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if !eng.Alive(0) {
		t.Fatal("node died with unlimited battery")
	}
}
