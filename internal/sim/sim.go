// Package sim is a deterministic discrete-event simulator for broadcast
// sensor networks — the replacement for the paper's SensorSimII testbed.
//
// The engine owns a virtual clock and a binary-heap event queue; node
// behaviors (internal/node.Behavior) run sequentially as their messages and
// timers fire, so a run is a pure function of the configuration seed.
// Event-time ties are broken by insertion sequence, which makes runs
// bit-reproducible across machines.
//
// The radio model is a broadcast medium over a unit-disk topology: one
// transmission reaches every graph neighbor after a propagation delay plus
// bounded random jitter, with optional independent per-link loss. Energy is
// charged per packet and per byte through internal/energy. This captures
// everything the paper's figures measure (message counts, key counts,
// cluster structure) without modeling PHY/MAC detail the paper does not
// report.
//
// # Buffer ownership
//
// The engine recycles both its event records and the per-receiver packet
// copies it hands to Behavior.Receive. The contract is strict: a packet
// slice passed to Receive (and the TraceEvent.Pkt slice passed to a Trace
// hook) is owned by the engine and valid only until that callback returns;
// code that needs the bytes longer must copy them. Config.PoisonRecycled
// turns violations into loud test failures, and Config.DisablePooling
// restores the old allocate-per-delivery behavior for A/B comparison —
// both engines produce byte-identical runs for any behavior honoring the
// contract.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Config parameterizes an Engine.
type Config struct {
	// Graph is the communication topology. Node i of the graph hosts
	// behavior i.
	Graph *topology.Graph
	// Seed drives all randomness (medium jitter/loss and every node's
	// private stream).
	Seed uint64
	// PropDelay is the fixed per-hop delivery latency. Defaults to 1ms —
	// the scale only matters relative to protocol timeouts.
	PropDelay time.Duration
	// Jitter is the maximum additional uniform random delivery delay,
	// modeling MAC contention. Defaults to 200µs.
	Jitter time.Duration
	// Loss is the independent per-link per-packet loss probability.
	Loss float64
	// Collisions enables the half-duplex collision model: a packet
	// occupies the receiver's radio for its airtime, and any packet
	// arriving while another reception is in progress corrupts both.
	// This models a slotless, CSMA-free MAC — the pessimistic end; real
	// sensor MACs sit between this and the default collision-free medium.
	Collisions bool
	// AirtimePerByte is how long one payload byte occupies the channel
	// (used only when Collisions is set). Defaults to 32µs/byte, the
	// 250 kbit/s of an 802.15.4 radio.
	AirtimePerByte time.Duration
	// Energy is the cost model; zero value means DefaultModel.
	Energy energy.Model
	// Battery, if positive, is each node's energy budget in µJ. A node
	// whose cumulative consumption exceeds it dies — the depletion
	// process that motivates the paper's node-addition mechanism
	// ("sensors usually have limited lifetime and usually die of energy
	// depletion", Section IV-E). Zero means unlimited.
	Battery float64
	// OnDeath, if non-nil, is called when a node dies of energy
	// depletion — whether the engine's battery accounting exceeded the
	// budget or the behavior declared its own death through Context.Die.
	OnDeath func(i int, at time.Duration)
	// Faults, if non-nil, is a deterministic fault-injection plan: node
	// crashes and reboots become engine events, and the plan's loss
	// processes (Gilbert–Elliott bursts, ramps, partitions) are consulted
	// for every delivery, in the same pre-airtime slot as Loss. All plan
	// randomness comes from a stream split off Seed, so (Seed, Faults)
	// fully determines the run.
	Faults *faults.Plan
	// OnCrash, if non-nil, observes plan-scheduled node crashes.
	OnCrash func(i int, at time.Duration)
	// Trace, if non-nil, observes every packet delivery attempt.
	Trace func(ev TraceEvent)
	// Obs, if non-nil, attaches the observability subsystem: medium and
	// engine counters plus crash/reboot events, labeled with the scope's
	// run/trial. Instrumentation draws no randomness and takes no
	// protocol-visible branches, so enabling it never changes a run.
	Obs *obs.Scope
	// DisablePooling turns off the engine's event free-list and packet
	// arena, making every delivery allocate fresh memory as the
	// pre-pooling engine did. Pooling is invisible to any behavior that
	// honors the buffer-ownership contract (see the package comment), so
	// this switch exists only for the equivalence tests that pin a
	// pooled and an unpooled engine to byte-identical runs, and as a
	// debugging escape hatch.
	DisablePooling bool
	// PoisonRecycled overwrites every recycled packet buffer with 0xDB
	// before reuse. A behavior or trace hook that illegally retains a
	// delivered packet past its callback observes the poison and
	// diverges, turning silent use-after-recycle bugs into loud test
	// failures. Ignored when DisablePooling is set.
	PoisonRecycled bool
	// Shards, when >= 1, runs the trial on the intra-trial sharded
	// engine: nodes are partitioned into Shards groups, each group's
	// event heap advances on its own goroutine in conservative epochs of
	// width PropDelay (the minimum radio latency, hence a safe
	// lookahead), and cross-shard deliveries travel through per-epoch
	// mailboxes. Shard mode uses a shard-count-invariant determinism
	// contract — per-sender medium streams and a canonical
	// (time, source lane, lane sequence) event order — so the output is
	// byte-identical at every Shards >= 1 (Shards=1 is the serial escape
	// hatch, running the same contract on the calling goroutine).
	// Shards=0 (the default) keeps the legacy single-heap engine, whose
	// output all pre-sharding golden tests pin. Switching between 0 and
	// >=1 is output-affecting, like changing a seed salt; see
	// docs/SCALING.md and docs/DETERMINISM.md.
	Shards int
	// ShardOf optionally assigns each graph node to a shard (len N(),
	// values in [0, Shards)). Nil assigns contiguous index ranges;
	// core.Deploy passes a spatial stripe assignment built from the
	// deployment geometry so most radio neighborhoods stay intra-shard.
	// The assignment affects only performance, never output: the shard
	// contract is invariant to where the cuts fall.
	ShardOf []int
}

// TraceEvent describes one packet delivery attempt for debugging and the
// message-accounting experiments.
type TraceEvent struct {
	At   time.Duration
	From node.ID
	To   node.ID
	Size int
	Lost bool
	// Pkt is the raw packet. It aliases an engine-owned buffer (the
	// sender's, which may itself be recycled protocol scratch) and is
	// only valid for the duration of the trace callback; hooks that need
	// it later must copy. Config.PoisonRecycled exists to catch hooks
	// that violate this.
	Pkt []byte
}

// Engine is the discrete-event simulator. It is not safe for concurrent
// use; the goroutine runtime lives in internal/live.
type Engine struct {
	cfg    Config
	now    time.Duration
	seq    uint64
	queue  eventHeap
	hosts  []*host
	medium *xrand.RNG
	inj    *faults.Injector
	m      simMetrics

	// freeEv is the event free-list: every dispatched event returns here
	// and is reused by the next push, so the steady-state event loop
	// stops allocating. pkts recycles the per-receiver delivery copies
	// under the same discipline.
	freeEv []*event
	pkts   pktArena

	// Shard-mode state (Config.Shards >= 1; see shard.go). root is kept
	// so per-sender medium streams can be split lazily; lookahead is the
	// conservative epoch width (= PropDelay, the minimum cross-shard
	// delivery latency). In shard mode e.queue holds only coordinator
	// (global) events — Schedule/Do closures — which run between epochs.
	sharded   bool
	root      *xrand.RNG
	lookahead time.Duration
	shards    []*shard
	shardOf   []int32
	cbScratch []cbRec
}

// simMetrics holds the engine's counters. With observability off every
// field is nil and each hook is a single nil check.
type simMetrics struct {
	events     *obs.Counter
	tx         *obs.Counter
	txBytes    *obs.Counter
	rx         *obs.Counter
	lost       *obs.Counter
	collisions *obs.Counter
	crashes    *obs.Counter
	reboots    *obs.Counter
	deaths     *obs.Counter

	// Shard-mode instrumentation.
	epochs *obs.Counter
	xmsgs  *obs.Counter
	stall  *obs.Histogram
	util   *obs.Histogram
}

func newSimMetrics(r *obs.Registry) simMetrics {
	return simMetrics{
		events:     r.Counter("sim_events_total", "discrete events processed by the engine"),
		tx:         r.Counter("sim_tx_total", "packets broadcast onto the medium"),
		txBytes:    r.Counter("sim_tx_bytes_total", "payload bytes broadcast onto the medium"),
		rx:         r.Counter("sim_rx_total", "packets decoded by a receiver"),
		lost:       r.Counter("sim_lost_total", "per-link deliveries dropped by loss or a fault plan"),
		collisions: r.Counter("sim_collisions_total", "packets destroyed by the half-duplex collision model"),
		crashes:    r.Counter("sim_crashes_total", "node crashes (fault plan or scenario)"),
		reboots:    r.Counter("sim_reboots_total", "node reboots after a crash"),
		deaths:     r.Counter("sim_battery_deaths_total", "nodes dead of energy depletion (battery accounting or Context.Die)"),
		epochs:     r.Counter("sim_epochs_total", "conservative epochs executed by the sharded engine"),
		xmsgs:      r.Counter("sim_xshard_msgs_total", "cross-shard deliveries exchanged through epoch mailboxes"),
		stall:      r.Histogram("sim_shard_stall_seconds", "wall-clock spread between the first and last shard finishing an epoch (merge stall)", []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}),
		util:       r.Histogram("sim_shard_util", "per-epoch shard utilization: events processed divided by shards times the busiest shard's events", []float64{0.25, 0.5, 0.75, 0.9, 1}),
	}
}

// faultStream is the Split label of the fault injector's RNG. Node i uses
// label 1+i and the medium uses 0, so any label above every representable
// node index is free.
const faultStream = uint64(1) << 40

// mediumLaneBase is the Split label base for shard mode's per-sender
// medium streams: sender i draws its loss and jitter variates from
// Split(mediumLaneBase + i) instead of the legacy shared Split(0) stream.
// Per-sender streams are what make the radio randomness independent of
// the global interleaving of transmissions — the heart of the
// shard-count-invariance contract.
const mediumLaneBase = uint64(1) << 41

// eventKind discriminates the engine's typed events. The hot-path kinds
// (delivery, timer, collidable reception) carry their operands in the
// event record itself instead of a freshly allocated closure, which is
// what lets the free-list make the event loop allocation-free.
type eventKind uint8

const (
	evFunc    eventKind = iota // generic scheduled function (Schedule, Boot)
	evDeliver                  // collision-free packet delivery to h
	evRxBegin                  // collision model: packet starts occupying h's radio
	evRxEnd                    // collision model: airtime over, deliver if intact
	evTimer                    // behavior timer tid on h

	// Shard-mode kinds (see shard.go). They carry the canonical
	// (at, src, seq) ordering key instead of the legacy global sequence.
	evStart    // behavior Start on h at boot time
	evSDeliver // shard delivery: fault-drop decided receiver-side at arrival
	evSCrash   // fault-plan crash of h
	evSReboot  // fault-plan reboot of h
)

type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	fn   func()
	h    *host
	from node.ID
	pkt  []byte
	rx   *reception
	tid  node.TimerID

	// Shard-mode key and payload extensions. src is the owning lane
	// (the graph index of the host whose counter issued seq); txAt and
	// lossLost carry a shard delivery's transmission time and sender-side
	// Config.Loss outcome across the mailbox.
	src      int32
	txAt     time.Duration
	lossLost bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// pktArena recycles the per-receiver packet copies deliverFrom makes.
// Buffers are handed to Behavior.Receive and reclaimed as soon as the
// callback returns; see the package comment for the ownership contract.
type pktArena struct {
	free     [][]byte
	disabled bool
	poison   bool
}

func (a *pktArena) get(n int) []byte {
	if a.disabled {
		return make([]byte, n)
	}
	if last := len(a.free) - 1; last >= 0 {
		b := a.free[last]
		a.free[last] = nil
		a.free = a.free[:last]
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this packet: drop it and size up. Packet sizes
		// are bounded, so the arena converges to max-size buffers.
	}
	c := n
	if c < 128 {
		c = 128
	}
	return make([]byte, n, c)
}

func (a *pktArena) put(b []byte) {
	if a.disabled || cap(b) == 0 {
		return
	}
	if a.poison {
		b = b[:cap(b)]
		for i := range b {
			b[i] = 0xDB
		}
	}
	a.free = append(a.free, b)
}

// host adapts one behavior to the engine and implements node.Context.
type host struct {
	eng      *Engine
	id       node.ID
	idx      int
	behavior node.Behavior
	rng      *xrand.RNG
	meter    energy.Meter
	alive    bool
	started  bool

	// timers holds each armed timer with its tag; presence in the slice
	// is the armed/cancelled state. Timer IDs are handed out in
	// increasing order, so appending keeps the slice sorted and lookups
	// binary-search it — a node arms only a handful of timers at once,
	// and the flat layout beats a per-host map's bucket overhead at the
	// 10^6-host scale.
	timers  []timerRec
	nextTID node.TimerID

	// Collision-model state: the reception currently occupying the
	// radio, and how many packets collisions have destroyed here.
	rxCurrent  *reception
	collisions int

	// immortal exempts the node from battery death (mains-powered base
	// stations).
	immortal bool

	// Shard-mode state: the owning shard, the lazily split per-sender
	// medium stream, and the per-host lane sequence counter that
	// tie-breaks this host's events in the canonical order. lseq is only
	// ever touched by the owning shard's goroutine (or by the
	// coordinator while every shard is at a barrier).
	sh   *shard
	med  *xrand.RNG
	lseq uint64
}

// reception is one in-progress packet arrival under the collision model.
type reception struct {
	endsAt  time.Duration
	corrupt bool
}

// New builds an engine hosting one behavior per graph node. behaviors[i]
// runs at graph node i with ID node.ID(i). Behaviors may be nil for nodes
// that exist in the topology but are never booted (reserved positions for
// late deployment).
func New(cfg Config, behaviors []node.Behavior) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: Config.Graph is required")
	}
	if len(behaviors) != cfg.Graph.N() {
		return nil, fmt.Errorf("sim: %d behaviors for %d graph nodes", len(behaviors), cfg.Graph.N())
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = time.Millisecond
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 200 * time.Microsecond
	}
	if cfg.AirtimePerByte == 0 {
		cfg.AirtimePerByte = 32 * time.Microsecond // 250 kbit/s
	}
	if (cfg.Energy == energy.Model{}) {
		cfg.Energy = energy.DefaultModel()
	}
	root := xrand.New(cfg.Seed)
	eng := &Engine{
		cfg:    cfg,
		medium: root.Split(0),
		m:      newSimMetrics(cfg.Obs.Registry()),
	}
	eng.pkts.disabled = cfg.DisablePooling
	eng.pkts.poison = cfg.PoisonRecycled
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Graph.N()); err != nil {
			return nil, err
		}
		eng.inj = faults.NewInjector(cfg.Faults, root.Split(faultStream))
		eng.inj.SetMetrics(faults.NewMetrics(cfg.Obs.Registry()))
		eng.inj.SetLocator(locatorFor(cfg.Graph))
	}
	eng.hosts = make([]*host, len(behaviors))
	for i, b := range behaviors {
		eng.hosts[i] = &host{
			eng:      eng,
			id:       node.ID(i),
			idx:      i,
			behavior: b,
			rng:      root.Split(1 + uint64(i)),
			alive:    b != nil,
		}
	}
	if cfg.Shards > 0 {
		if err := eng.setupShards(root); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// newEvent takes an event record from the free-list (or allocates one)
// and stamps it with the next tie-break sequence number.
func (e *Engine) newEvent(at time.Duration) *event {
	var ev *event
	if last := len(e.freeEv) - 1; last >= 0 {
		ev = e.freeEv[last]
		e.freeEv[last] = nil
		e.freeEv = e.freeEv[:last]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	return ev
}

// recycle clears a dispatched event and returns it to the free-list.
func (e *Engine) recycle(ev *event) {
	if e.cfg.DisablePooling {
		return
	}
	*ev = event{}
	e.freeEv = append(e.freeEv, ev)
}

// Schedule runs fn at the given absolute virtual time (or immediately next
// if t is in the past). External actors — experiment scripts, the
// adversary — use this to interleave with protocol events.
func (e *Engine) Schedule(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(t, fn)
}

func (e *Engine) push(at time.Duration, fn func()) {
	ev := e.newEvent(at)
	ev.kind = evFunc
	ev.fn = fn
	heap.Push(&e.queue, ev)
}

// Boot schedules behavior Start callbacks at time t for every alive,
// not-yet-started node, and turns the fault plan's crash/reboot events
// into engine events. Call once after New (t=0 for the initial
// deployment); late-deployed nodes are booted individually with BootNode.
func (e *Engine) Boot(t time.Duration) {
	for i := range e.hosts {
		h := e.hosts[i]
		if h.alive && !h.started {
			e.bootHost(h, t)
		}
	}
	if e.inj != nil {
		for _, ev := range e.inj.CrashRebootEvents() {
			ev := ev
			if e.sharded {
				// Crash/reboot land on the target's own lane so their
				// order against the node's other events is canonical.
				h := e.hosts[ev.Node]
				kind := evSCrash
				if ev.Kind == faults.KindReboot {
					kind = evSReboot
				}
				h.sh.pushHostEvent(ev.At, h, kind)
				continue
			}
			switch ev.Kind {
			case faults.KindCrash:
				e.push(ev.At, func() { e.Crash(ev.Node) })
			case faults.KindReboot:
				e.push(ev.At, func() { e.Reboot(ev.Node) })
			}
		}
	}
}

// BootNode installs (or replaces) the behavior at graph node i and
// schedules its Start at time t. It is how late-deployed sensors
// (Section IV-E) enter the network: the position was reserved in the
// topology, the radio comes alive at t.
func (e *Engine) BootNode(i int, b node.Behavior, t time.Duration) {
	h := e.hosts[i]
	h.behavior = b
	h.alive = true
	h.started = false
	e.bootHost(h, t)
}

func (e *Engine) bootHost(h *host, t time.Duration) {
	h.started = true
	if e.sharded {
		h.sh.pushHostEvent(t, h, evStart)
		return
	}
	e.push(t, func() {
		if h.alive {
			h.behavior.Start(h)
		}
	})
}

// dispatch runs one popped event and returns its record to the free-list.
func (e *Engine) dispatch(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evDeliver:
		e.runDeliver(ev.h, ev.from, ev.pkt)
	case evRxBegin:
		e.runRxBegin(ev.h, ev.rx)
	case evRxEnd:
		e.runRxEnd(ev.h, ev.from, ev.pkt, ev.rx)
	case evTimer:
		e.runTimer(ev.h, ev.tid)
	}
	e.recycle(ev)
}

// Run processes events in time order until the queue is empty or the
// virtual clock would exceed until. It returns the number of events
// processed.
func (e *Engine) Run(until time.Duration) int {
	if e.sharded {
		n, _ := e.runSharded(until, false, 0)
		return n
	}
	processed := 0
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.dispatch(next)
		processed++
		e.m.events.Inc()
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// RunUntilIdle drains every pending event regardless of time and returns
// the number processed. maxEvents guards against livelock (<=0 means no
// limit); exceeding it returns an error.
func (e *Engine) RunUntilIdle(maxEvents int) (int, error) {
	if e.sharded {
		return e.runSharded(0, true, maxEvents)
	}
	processed := 0
	for e.queue.Len() > 0 {
		next := heap.Pop(&e.queue).(*event)
		e.now = next.at
		e.dispatch(next)
		processed++
		e.m.events.Inc()
		if maxEvents > 0 && processed > maxEvents {
			return processed, fmt.Errorf("sim: exceeded %d events; protocol not quiescing", maxEvents)
		}
	}
	return processed, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	n := e.queue.Len()
	for _, s := range e.shards {
		n += s.queue.Len()
		for _, out := range s.out {
			n += len(out)
		}
	}
	return n
}

// ShardCount returns the number of shards the engine runs on (0 for the
// legacy single-heap engine).
func (e *Engine) ShardCount() int { return len(e.shards) }

// N returns the number of hosted nodes.
func (e *Engine) N() int { return len(e.hosts) }

// Meter returns node i's energy meter (valid even after death).
func (e *Engine) Meter(i int) *energy.Meter { return &e.hosts[i].meter }

// Alive reports whether node i is operating.
func (e *Engine) Alive(i int) bool { return e.hosts[i].alive }

// Behavior returns the behavior hosted at node i (nil if none).
func (e *Engine) Behavior(i int) node.Behavior { return e.hosts[i].behavior }

// Kill removes node i from the network immediately: no further callbacks,
// no forwarding — the simulator's model of external destruction. Unlike a
// battery death or Context.Die it is silent: no death counter, no OnDeath
// callback (the scenario that called Kill already knows).
func (e *Engine) Kill(i int) { e.hosts[i].alive = false }

// Crash is the fault model's node failure: the radio closes, every
// pending timer dies with the volatile timer state, and any in-progress
// reception is abandoned. Unlike Kill it is designed to pair with Reboot —
// a rebooted node must not see timers armed before the crash.
func (e *Engine) Crash(i int) {
	h := e.hosts[i]
	if !h.alive {
		return
	}
	h.alive = false
	h.timers = h.timers[:0]
	h.rxCurrent = nil
	e.m.crashes.Inc()
	e.cfg.Obs.Emit(e.now, obs.KindCrash, i, 0, "")
	if e.cfg.OnCrash != nil {
		e.cfg.OnCrash(i, e.now)
	}
}

// Reboot revives a crashed node at the current virtual time: the radio
// reopens and the behavior gets a restart callback — Reboot if it
// implements node.Rebooter (warm restart: key material in stable storage
// survived, volatile timers did not), Start otherwise. Rebooting an alive
// or never-booted node is a no-op.
func (e *Engine) Reboot(i int) {
	h := e.hosts[i]
	if h.alive || h.behavior == nil || !h.started {
		return
	}
	h.alive = true
	e.m.reboots.Inc()
	e.cfg.Obs.Emit(e.now, obs.KindReboot, i, 0, "")
	if e.sharded {
		// The restart callback runs with the host's Context, whose clock
		// is the owning shard's; align it with coordinator time first.
		e.syncShardClocks()
	}
	if rb, ok := h.behavior.(node.Rebooter); ok {
		rb.Reboot(h)
		return
	}
	h.behavior.Start(h)
}

// Collisions returns how many packets the collision model destroyed at
// node i (zero when the model is disabled).
func (e *Engine) Collisions(i int) int { return e.hosts[i].collisions }

// Graph returns the underlying topology.
func (e *Engine) Graph() *topology.Graph { return e.cfg.Graph }

// locatorFor adapts the topology to the fault injector's position
// locator: geometry-scoped events (moving partitions) wrap on toroidal
// regions and sweep off the edge on planar ones. Positions are read at
// drop time, so mobile topologies are reflected move-by-move.
func locatorFor(g *topology.Graph) (float64, func(i int) (x, y float64)) {
	side := 0.0
	if g.Metric() == geom.Torus {
		side = g.Side()
	}
	return side, func(i int) (x, y float64) {
		p := g.Pos(i)
		return p.X, p.Y
	}
}

// Do schedules fn to run at virtual time t with node i's Context, on the
// engine's event loop — the hook through which experiment scripts trigger
// application-level actions (send a reading, start a refresh, issue a
// revocation) without breaking the single-threaded behavior contract.
// fn is not invoked if the node is dead at t.
func (e *Engine) Do(t time.Duration, i int, fn func(node.Context)) {
	h := e.hosts[i]
	e.Schedule(t, func() {
		if h.alive {
			fn(h)
		}
	})
}

// InjectAt broadcasts pkt from the radio position of graph node at,
// claiming link-layer sender fakeFrom. This is the adversary's transmitter:
// it spends no defender energy and reaches exactly the nodes a real radio
// at that position would reach.
func (e *Engine) InjectAt(at int, fakeFrom node.ID, pkt []byte) {
	if e.sharded {
		// Injections originate on the coordinator between epochs; the
		// radio position's host owns the lane and the medium stream, so
		// the fan-out is identical to a real transmission from there.
		e.syncShardClocks()
		e.hosts[at].sh.deliverFrom(e.hosts[at], fakeFrom, pkt)
		return
	}
	e.deliverFrom(at, fakeFrom, pkt)
}

// broadcast carries a host transmission onto the medium.
func (e *Engine) broadcast(h *host, pkt []byte) {
	e.m.tx.Inc()
	e.m.txBytes.Add(uint64(len(pkt)))
	h.meter.ChargeTx(e.cfg.Energy, len(pkt))
	// The transmission itself completes even if it drains the battery;
	// the node is dead afterwards.
	if e.sharded {
		h.sh.deliverFrom(h, h.id, pkt)
	} else {
		e.deliverFrom(h.idx, h.id, pkt)
	}
	e.checkBattery(h)
}

// SetImmortal exempts node i from battery death — the mains-powered base
// station in lifetime experiments.
func (e *Engine) SetImmortal(i int) { e.hosts[i].immortal = true }

// checkBattery kills the host if its cumulative consumption exceeds the
// configured budget.
func (e *Engine) checkBattery(h *host) {
	if e.cfg.Battery <= 0 || !h.alive || h.immortal {
		return
	}
	if h.meter.Total() > e.cfg.Battery {
		e.kill(h)
	}
}

// kill is the single death path for energy depletion: both the engine's
// battery accounting (checkBattery) and a behavior's own Context.Die
// route through it, so the death counter and the OnDeath callback can
// never disagree about how many nodes died.
func (e *Engine) kill(h *host) {
	if !h.alive {
		return
	}
	h.alive = false
	e.m.deaths.Inc()
	if e.cfg.OnDeath != nil {
		if h.sh != nil {
			// Shard mode: callbacks are buffered and replayed on the
			// coordinator in canonical order at the next barrier.
			h.sh.bufferCallback(cbRec{kind: cbDeath, at: h.sh.now, node: int32(h.idx)})
			return
		}
		e.cfg.OnDeath(h.idx, e.now)
	}
}

// deliverFrom fans a transmission at graph position idx out to every
// radio neighbor. Each receiver gets a private arena copy, so neither the
// sender's later reuse of its buffer nor another receiver's in-place
// mutation can corrupt a delivery — the same isolation a real radio
// provides; the copy returns to the arena when Receive returns.
func (e *Engine) deliverFrom(idx int, from node.ID, pkt []byte) {
	for _, nb := range e.cfg.Graph.Neighbors(idx) {
		rcv := e.hosts[nb]
		// Loss ordering contract (pinned by TestLossBeforeCollision*):
		// fault-plan drops and independent per-link loss are both decided
		// at transmission time, before the packet would occupy the
		// receiver's radio — a lost packet can therefore never collide
		// with, nor corrupt, another reception. The fault injector is
		// consulted first so its chains advance on every arrival
		// regardless of the Loss draw's outcome.
		lost := e.inj != nil && e.inj.Drop(e.now, idx, int(nb))
		lost = (e.cfg.Loss > 0 && e.medium.Bool(e.cfg.Loss)) || lost
		// The jitter draw is made even for lost packets, so the medium
		// stream consumed per (transmission, receiver) is a constant two
		// variates: loss outcomes — whether from Config.Loss or a fault
		// plan — can never shift later draws. This is what keeps a fault
		// plan targeting one receiver from perturbing the radio behavior
		// every other receiver observes (TestFaultPlanPreservesMediumStream).
		delay := e.cfg.PropDelay
		if jit := e.scaledJitter(); jit > 0 {
			delay += time.Duration(e.medium.Uint64n(uint64(jit)))
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace(TraceEvent{At: e.now, From: from, To: rcv.id, Size: len(pkt), Lost: lost, Pkt: pkt})
		}
		if lost {
			e.m.lost.Inc()
			continue
		}
		copied := e.pkts.get(len(pkt))
		copy(copied, pkt)
		if e.cfg.Collisions {
			e.scheduleCollidableRx(rcv, from, copied, e.now+delay)
			continue
		}
		ev := e.newEvent(e.now + delay)
		ev.kind = evDeliver
		ev.h = rcv
		ev.from = from
		ev.pkt = copied
		heap.Push(&e.queue, ev)
	}
}

// runDeliver completes a collision-free delivery and reclaims the packet
// buffer once the receiver's callback is done with it.
func (e *Engine) runDeliver(rcv *host, from node.ID, pkt []byte) {
	if rcv.alive {
		e.m.rx.Inc()
		rcv.meter.ChargeRx(e.cfg.Energy, len(pkt))
		rcv.behavior.Receive(rcv, from, pkt)
		e.checkBattery(rcv)
	}
	e.pkts.put(pkt)
}

// scaledJitter returns the medium jitter with any active fault-plan
// jitter scaling applied.
func (e *Engine) scaledJitter() time.Duration {
	jit := e.cfg.Jitter
	if e.inj != nil && jit > 0 {
		jit = time.Duration(float64(jit) * e.inj.JitterScale(e.now))
	}
	return jit
}

// scheduleCollidableRx implements the half-duplex collision model: the
// packet occupies rcv's radio from arrival until arrival+airtime; if it
// overlaps another reception, both are corrupted and neither is
// delivered. Receive energy is charged only for packets that decode —
// corrupted receptions are dropped before the full-packet receive cost.
// The end-of-airtime event owns the packet buffer.
func (e *Engine) scheduleCollidableRx(rcv *host, from node.ID, pkt []byte, arrival time.Duration) {
	airtime := e.cfg.AirtimePerByte * time.Duration(len(pkt))
	if airtime <= 0 {
		airtime = time.Microsecond
	}
	rx := &reception{endsAt: arrival + airtime}
	begin := e.newEvent(arrival)
	begin.kind = evRxBegin
	begin.h = rcv
	begin.rx = rx
	heap.Push(&e.queue, begin)
	end := e.newEvent(arrival + airtime)
	end.kind = evRxEnd
	end.h = rcv
	end.from = from
	end.pkt = pkt
	end.rx = rx
	heap.Push(&e.queue, end)
}

// runRxBegin starts occupying the receiver's radio, corrupting any
// overlapping reception.
func (e *Engine) runRxBegin(rcv *host, rx *reception) {
	if !rcv.alive {
		return
	}
	if cur := rcv.rxCurrent; cur != nil && e.now < cur.endsAt {
		// Overlap: the in-progress reception and this one are both
		// destroyed.
		if !cur.corrupt {
			cur.corrupt = true
			rcv.collisions++
			e.m.collisions.Inc()
		}
		rx.corrupt = true
		rcv.collisions++
		e.m.collisions.Inc()
		if rx.endsAt > cur.endsAt {
			rcv.rxCurrent = rx // radio stays jammed until the longer one ends
		}
		return
	}
	rcv.rxCurrent = rx
}

// runRxEnd delivers a collidable reception that survived its airtime and
// reclaims the packet buffer.
func (e *Engine) runRxEnd(rcv *host, from node.ID, pkt []byte, rx *reception) {
	if rcv.alive && !rx.corrupt {
		e.m.rx.Inc()
		rcv.meter.ChargeRx(e.cfg.Energy, len(pkt))
		rcv.behavior.Receive(rcv, from, pkt)
		e.checkBattery(rcv)
	}
	e.pkts.put(pkt)
}

// runTimer fires behavior timer tid on h unless it was cancelled (absent
// from the armed set) or the host died.
func (e *Engine) runTimer(h *host, tid node.TimerID) {
	tag, ok := h.takeTimer(tid)
	if !ok {
		return
	}
	if !h.alive {
		return
	}
	h.behavior.Timer(h, tag)
}

// timerRec is one armed timer; host.timers keeps them sorted by tid.
type timerRec struct {
	tid node.TimerID
	tag node.Tag
}

// timerIdx binary-searches the armed set for tid, returning -1 if it
// was never armed or has been cancelled/fired.
func (h *host) timerIdx(tid node.TimerID) int {
	lo, hi := 0, len(h.timers)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.timers[mid].tid < tid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.timers) && h.timers[lo].tid == tid {
		return lo
	}
	return -1
}

// takeTimer removes tid from the armed set, returning its tag.
func (h *host) takeTimer(tid node.TimerID) (node.Tag, bool) {
	i := h.timerIdx(tid)
	if i < 0 {
		return 0, false
	}
	tag := h.timers[i].tag
	h.timers = append(h.timers[:i], h.timers[i+1:]...)
	return tag, true
}

// --- node.Context implementation ---

// ID implements node.Context.
func (h *host) ID() node.ID { return h.id }

// Now implements node.Context. In shard mode the host's clock is its
// owning shard's (synced to coordinator time for between-epoch callbacks).
func (h *host) Now() time.Duration {
	if h.sh != nil {
		return h.sh.now
	}
	return h.eng.now
}

// Broadcast implements node.Context.
func (h *host) Broadcast(pkt []byte) {
	if !h.alive {
		return
	}
	h.eng.broadcast(h, pkt)
}

// SetTimer implements node.Context.
func (h *host) SetTimer(d time.Duration, tag node.Tag) node.TimerID {
	h.nextTID++
	tid := h.nextTID
	h.timers = append(h.timers, timerRec{tid, tag}) // tids increase: stays sorted
	if h.sh != nil {
		ev := h.sh.pushHostEvent(h.sh.now+d, h, evTimer)
		ev.tid = tid
		return tid
	}
	e := h.eng
	ev := e.newEvent(e.now + d)
	ev.kind = evTimer
	ev.h = h
	ev.tid = tid
	heap.Push(&e.queue, ev)
	return tid
}

// CancelTimer implements node.Context.
func (h *host) CancelTimer(id node.TimerID) {
	if i := h.timerIdx(id); i >= 0 {
		h.timers = append(h.timers[:i], h.timers[i+1:]...)
	}
}

// Rand implements node.Context.
func (h *host) Rand() *xrand.RNG { return h.rng }

// ChargeCipher implements node.Context.
func (h *host) ChargeCipher(n int) {
	h.meter.ChargeCipher(h.eng.cfg.Energy, n)
	h.eng.checkBattery(h)
}

// ChargeMAC implements node.Context.
func (h *host) ChargeMAC(n int) {
	h.meter.ChargeMAC(h.eng.cfg.Energy, n)
	h.eng.checkBattery(h)
}

// Die implements node.Context: the behavior's own declaration of energy
// death. It routes through the same bookkeeping as a battery-accounting
// death, so the deaths counter and OnDeath observe it.
func (h *host) Die() { h.eng.kill(h) }
