// Shard-mode scheduler: the intra-trial parallel engine selected by
// Config.Shards >= 1.
//
// # Design
//
// The node set is partitioned into S shards (spatial stripes when the
// caller supplies Config.ShardOf; contiguous index ranges otherwise).
// Each shard owns a private event heap, packet arena, event free-list,
// and fault-injector replica, and advances on its own goroutine in
// conservative synchronous epochs. The epoch width is the lookahead
// L = PropDelay: every radio delivery — the only cross-shard
// interaction — arrives at least L after its transmission, so if M is
// the globally earliest pending event, no event before M+L can be
// influenced by a transmission that has not happened yet. Each epoch
// therefore processes every event with at < limit = min(M+L, next
// coordinator event, until+1ns), then all shards meet at a barrier
// where the coordinator drains the per-shard outboxes into the target
// heaps and replays buffered user callbacks.
//
// # The shard-count-invariance contract
//
// Shard mode is byte-identical across every shard count S >= 1 and
// every shard assignment, but intentionally NOT to the legacy Shards=0
// engine, whose global insertion-sequence tie-break and single shared
// medium stream are inherently serial (see docs/DETERMINISM.md). Three
// mechanisms make the contract hold:
//
//  1. Canonical event order. Every shard event carries the key
//     (at, src, seq) where src is the graph index of the host whose
//     lane produced it and seq is that host's private lane counter
//     (host.lseq). Lane counters are only ever advanced by the owning
//     goroutine, so keys are a pure function of protocol execution, not
//     of scheduling. Coordinator (Schedule/Do) events form a separate
//     lane that runs before shard events at equal times.
//  2. Per-sender medium streams. Sender i draws its loss and jitter
//     variates from Split(mediumLaneBase+i) — exactly two draws per
//     (transmission, receiver) in neighbor order — so radio randomness
//     never depends on how transmissions interleave globally.
//  3. Receiver-side fault evaluation. Fault-plan drops are decided on
//     the receiver's shard at arrival, in canonical arrival order,
//     against a per-shard injector replica; replicas share the same
//     split-derived streams, so any shard evaluates any chain
//     identically. User callbacks (Trace, OnDeath, OnCrash) are
//     buffered per shard and replayed on the coordinator in canonical
//     order at each barrier.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/xrand"
)

const maxTime = time.Duration(math.MaxInt64)

// shard owns one partition of the node set: its event heap, clock, and
// recycling pools. Fields are only touched by the shard's goroutine
// during an epoch, or by the coordinator while all shards sit at a
// barrier — never both at once.
type shard struct {
	eng   *Engine
	id    int
	now   time.Duration
	queue shardHeap

	// out[k] buffers deliveries addressed to shard k; the coordinator
	// drains every outbox into the target heaps at the epoch barrier.
	out []xoutbox

	// cbs buffers user-callback records (trace, death, crash) for
	// canonical-order replay on the coordinator.
	cbs []cbRec

	// inj is this shard's fault-injector replica (nil without Faults).
	inj *faults.Injector

	// processed counts events dispatched in the current epoch; the
	// coordinator harvests and resets it at the barrier.
	processed int

	freeEv []*event
	pkts   pktArena
}

type xoutbox []xmsg

// xmsg is one cross-shard delivery in flight: everything the receiving
// shard needs to reconstruct the evSDeliver event with its canonical
// (at, src, seq) key.
type xmsg struct {
	at       time.Duration // arrival time
	txAt     time.Duration // transmission time (trace + fault windows)
	src      int32         // sender lane
	seq      uint64        // sender lane sequence
	from     node.ID       // claimed link-layer sender
	to       int32         // receiver graph index
	pkt      []byte        // receiver's private payload copy
	lossLost bool          // sender-side Config.Loss verdict
}

// shardHeap orders events by the canonical (at, src, seq) key.
type shardHeap []*event

func (h shardHeap) Len() int { return len(h) }
func (h shardHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}
func (h shardHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *shardHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *shardHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// cbKind discriminates buffered user-callback records. The kind is part
// of the canonical replay key, so at equal times traces replay before
// deaths before crashes.
type cbKind uint8

const (
	cbTrace cbKind = iota
	cbDeath
	cbCrash
)

// cbRec is one buffered user callback. The replay key is
// (at, kind, src, seq, node); for traces (src, seq) is the delivery's
// canonical key, for deaths and crashes node disambiguates.
type cbRec struct {
	kind cbKind
	at   time.Duration
	src  int32
	seq  uint64
	node int32
	tr   TraceEvent
}

// setupShards switches the engine into shard mode. Called by New after
// hosts are built, with the root RNG that seeds all streams.
func (e *Engine) setupShards(root *xrand.RNG) error {
	s := e.cfg.Shards
	n := len(e.hosts)
	if e.cfg.ShardOf != nil && len(e.cfg.ShardOf) != n {
		return fmt.Errorf("sim: ShardOf has %d entries for %d nodes", len(e.cfg.ShardOf), n)
	}
	e.sharded = true
	e.root = root
	e.lookahead = e.cfg.PropDelay
	e.shards = make([]*shard, s)
	for k := range e.shards {
		sh := &shard{eng: e, id: k, out: make([]xoutbox, s)}
		sh.pkts.disabled = e.cfg.DisablePooling
		sh.pkts.poison = e.cfg.PoisonRecycled
		if e.cfg.Faults != nil {
			// Every replica splits the same faultStream label off the
			// same root, so replicas are interchangeable: whichever
			// shard evaluates a chain draws the same variates. The
			// metrics registry get-or-creates by name, so all replicas
			// share one set of counters.
			sh.inj = faults.NewInjector(e.cfg.Faults, root.Split(faultStream))
			sh.inj.SetMetrics(faults.NewMetrics(e.cfg.Obs.Registry()))
			sh.inj.SetLocator(locatorFor(e.cfg.Graph))
		}
		e.shards[k] = sh
	}
	e.shardOf = make([]int32, n)
	for i, h := range e.hosts {
		k := i * s / n
		if e.cfg.ShardOf != nil {
			k = e.cfg.ShardOf[i]
			if k < 0 || k >= s {
				return fmt.Errorf("sim: ShardOf[%d] = %d out of range [0,%d)", i, k, s)
			}
		}
		e.shardOf[i] = int32(k)
		h.sh = e.shards[k]
	}
	return nil
}

// mediumStream returns the host's private medium stream, splitting it
// off the root on first use. Only used in shard mode.
func (h *host) mediumStream() *xrand.RNG {
	if h.med == nil {
		h.med = h.eng.root.Split(mediumLaneBase + uint64(h.idx))
	}
	return h.med
}

// syncShardClocks advances every shard clock to coordinator time so
// that behavior callbacks invoked from coordinator context (Do
// closures, Reboot restarts, injections) observe the right Now().
// Clocks only ever move forward: every pending shard event is at or
// after coordinator time whenever the coordinator runs.
func (e *Engine) syncShardClocks() {
	for _, s := range e.shards {
		if s.now < e.now {
			s.now = e.now
		}
	}
}

// newEvent takes an event record from the shard's free-list. Unlike the
// legacy engine the canonical key is assigned by the caller, not a
// global sequence.
func (s *shard) newEvent() *event {
	if last := len(s.freeEv) - 1; last >= 0 {
		ev := s.freeEv[last]
		s.freeEv[last] = nil
		s.freeEv = s.freeEv[:last]
		return ev
	}
	return &event{}
}

func (s *shard) recycle(ev *event) {
	if s.eng.cfg.DisablePooling {
		return
	}
	*ev = event{}
	s.freeEv = append(s.freeEv, ev)
}

// pushHostEvent schedules an event on h's lane: the key is
// (at, h.idx, next lane sequence). The caller may fill kind-specific
// operands on the returned event (the heap orders only by the key).
func (s *shard) pushHostEvent(at time.Duration, h *host, kind eventKind) *event {
	h.lseq++
	ev := s.newEvent()
	ev.at = at
	ev.src = int32(h.idx)
	ev.seq = h.lseq
	ev.kind = kind
	ev.h = h
	heap.Push(&s.queue, ev)
	return ev
}

func (s *shard) bufferCallback(r cbRec) { s.cbs = append(s.cbs, r) }

// runEpoch processes every pending event strictly before limit. It runs
// on the shard's goroutine (or inline when S == 1 or during coordinator
// injections).
func (s *shard) runEpoch(limit time.Duration) {
	n := 0
	for len(s.queue) > 0 && s.queue[0].at < limit {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.dispatch(ev)
		n++
	}
	s.processed += n
}

func (s *shard) dispatch(ev *event) {
	switch ev.kind {
	case evStart:
		if ev.h.alive {
			ev.h.behavior.Start(ev.h)
		}
	case evSDeliver:
		s.runSDeliver(ev)
	case evRxEnd:
		s.runRxEnd(ev.h, ev.from, ev.pkt, ev.rx)
	case evTimer:
		s.eng.runTimer(ev.h, ev.tid)
	case evSCrash:
		s.crash(ev.h)
	case evSReboot:
		s.reboot(ev.h)
	}
	s.recycle(ev)
}

// deliverFrom fans a transmission from h's radio position out to every
// neighbor: the shard-mode counterpart of Engine.deliverFrom. The
// sender's private medium stream supplies exactly two variates (loss,
// jitter) per receiver in neighbor order; in-shard receivers get heap
// events directly, out-of-shard receivers get outbox records. Lost
// packets still ship whenever a trace hook or fault plan needs to
// observe the arrival (fault chains advance on every arrival, exactly
// as the legacy engine consults the injector before the loss draw).
func (s *shard) deliverFrom(h *host, from node.ID, pkt []byte) {
	e := s.eng
	txAt := s.now
	med := h.mediumStream()
	keepLost := e.cfg.Trace != nil || s.inj != nil
	for _, nb := range e.cfg.Graph.Neighbors(h.idx) {
		lost := e.cfg.Loss > 0 && med.Bool(e.cfg.Loss)
		delay := e.cfg.PropDelay
		if jit := s.scaledJitter(txAt); jit > 0 {
			delay += time.Duration(med.Uint64n(uint64(jit)))
		}
		if lost && !keepLost {
			e.m.lost.Inc()
			continue
		}
		copied := s.pkts.get(len(pkt))
		copy(copied, pkt)
		h.lseq++
		rcv := e.hosts[nb]
		if dst := rcv.sh; dst != s {
			s.out[dst.id] = append(s.out[dst.id], xmsg{
				at:       txAt + delay,
				txAt:     txAt,
				src:      int32(h.idx),
				seq:      h.lseq,
				from:     from,
				to:       nb,
				pkt:      copied,
				lossLost: lost,
			})
			continue
		}
		ev := s.newEvent()
		ev.at = txAt + delay
		ev.src = int32(h.idx)
		ev.seq = h.lseq
		ev.kind = evSDeliver
		ev.h = rcv
		ev.from = from
		ev.pkt = copied
		ev.txAt = txAt
		ev.lossLost = lost
		heap.Push(&s.queue, ev)
	}
}

// scaledJitter mirrors Engine.scaledJitter against the shard's injector
// replica. JitterScale is a pure function of the plan and the
// transmission time, so replicas agree.
func (s *shard) scaledJitter(at time.Duration) time.Duration {
	jit := s.eng.cfg.Jitter
	if s.inj != nil && jit > 0 {
		jit = time.Duration(float64(jit) * s.inj.JitterScale(at))
	}
	return jit
}

// runSDeliver completes one delivery on the receiver's shard: the
// fault-plan verdict is decided here, in canonical arrival order, then
// the packet is traced, dropped, handed to the collision model, or
// delivered.
func (s *shard) runSDeliver(ev *event) {
	e := s.eng
	rcv := ev.h
	lost := ev.lossLost
	if s.inj != nil && s.inj.Drop(ev.txAt, int(ev.src), rcv.idx) {
		lost = true
	}
	if e.cfg.Trace != nil {
		s.bufferCallback(cbRec{
			kind: cbTrace,
			at:   ev.txAt,
			src:  ev.src,
			seq:  ev.seq,
			tr: TraceEvent{
				At:   ev.txAt,
				From: ev.from,
				To:   rcv.id,
				Size: len(ev.pkt),
				Lost: lost,
				Pkt:  append([]byte(nil), ev.pkt...),
			},
		})
	}
	if lost {
		e.m.lost.Inc()
		s.pkts.put(ev.pkt)
		return
	}
	if e.cfg.Collisions {
		// The reception starts now (the event's time already includes
		// the propagation delay); only the end of airtime needs a
		// future event, keyed on the receiver's lane.
		airtime := e.cfg.AirtimePerByte * time.Duration(len(ev.pkt))
		if airtime <= 0 {
			airtime = time.Microsecond
		}
		rx := &reception{endsAt: s.now + airtime}
		s.rxBegin(rcv, rx)
		end := s.pushHostEvent(s.now+airtime, rcv, evRxEnd)
		end.from = ev.from
		end.pkt = ev.pkt
		end.rx = rx
		return
	}
	if rcv.alive {
		e.m.rx.Inc()
		rcv.meter.ChargeRx(e.cfg.Energy, len(ev.pkt))
		rcv.behavior.Receive(rcv, ev.from, ev.pkt)
		e.checkBattery(rcv)
	}
	s.pkts.put(ev.pkt)
}

// rxBegin mirrors Engine.runRxBegin on the shard clock.
func (s *shard) rxBegin(rcv *host, rx *reception) {
	if !rcv.alive {
		return
	}
	if cur := rcv.rxCurrent; cur != nil && s.now < cur.endsAt {
		if !cur.corrupt {
			cur.corrupt = true
			rcv.collisions++
			s.eng.m.collisions.Inc()
		}
		rx.corrupt = true
		rcv.collisions++
		s.eng.m.collisions.Inc()
		if rx.endsAt > cur.endsAt {
			rcv.rxCurrent = rx
		}
		return
	}
	rcv.rxCurrent = rx
}

// runRxEnd mirrors Engine.runRxEnd against the shard's arena.
func (s *shard) runRxEnd(rcv *host, from node.ID, pkt []byte, rx *reception) {
	e := s.eng
	if rcv.alive && !rx.corrupt {
		e.m.rx.Inc()
		rcv.meter.ChargeRx(e.cfg.Energy, len(pkt))
		rcv.behavior.Receive(rcv, from, pkt)
		e.checkBattery(rcv)
	}
	s.pkts.put(pkt)
}

// crash is the fault plan's node failure on the owning shard; the
// OnCrash callback is buffered for canonical replay.
func (s *shard) crash(h *host) {
	e := s.eng
	if !h.alive {
		return
	}
	h.alive = false
	h.timers = h.timers[:0]
	h.rxCurrent = nil
	e.m.crashes.Inc()
	e.cfg.Obs.Emit(s.now, obs.KindCrash, h.idx, 0, "")
	if e.cfg.OnCrash != nil {
		s.bufferCallback(cbRec{kind: cbCrash, at: s.now, node: int32(h.idx)})
	}
}

// reboot revives a crashed node on the owning shard, mirroring
// Engine.Reboot; the restart callback runs in shard context with the
// shard clock already at the event time.
func (s *shard) reboot(h *host) {
	e := s.eng
	if h.alive || h.behavior == nil || !h.started {
		return
	}
	h.alive = true
	e.m.reboots.Inc()
	e.cfg.Obs.Emit(s.now, obs.KindReboot, h.idx, 0, "")
	if rb, ok := h.behavior.(node.Rebooter); ok {
		rb.Reboot(h)
		return
	}
	h.behavior.Start(h)
}

// runSharded is the coordinator loop: compute the epoch limit from the
// globally earliest pending event plus the lookahead, run every shard
// up to it (concurrently for S > 1), then exchange mailboxes and replay
// callbacks at the barrier. Coordinator events (Schedule/Do closures)
// run between epochs, before shard events at equal times.
func (e *Engine) runSharded(until time.Duration, drainAll bool, maxEvents int) (int, error) {
	nShards := len(e.shards)
	var starts []chan time.Duration
	var done chan struct{}
	if nShards > 1 {
		starts = make([]chan time.Duration, nShards)
		done = make(chan struct{}, nShards)
		for k := range e.shards {
			starts[k] = make(chan time.Duration)
			go func(s *shard, start <-chan time.Duration) {
				for limit := range start {
					s.runEpoch(limit)
					done <- struct{}{}
				}
			}(e.shards[k], starts[k])
		}
		defer func() {
			for _, c := range starts {
				close(c)
			}
		}()
	}
	total := 0
	for {
		gt := maxTime // earliest coordinator event
		if len(e.queue) > 0 {
			gt = e.queue[0].at
		}
		st := maxTime // earliest shard event
		for _, s := range e.shards {
			if len(s.queue) > 0 && s.queue[0].at < st {
				st = s.queue[0].at
			}
		}
		m := gt
		if st < m {
			m = st
		}
		if m == maxTime {
			break // idle
		}
		if !drainAll && m > until {
			break
		}
		if gt <= st {
			// Coordinator lane first at equal times. Its closures may
			// touch any host (injections, boots, crashes), which is safe
			// because every shard is parked at the barrier.
			e.now = gt
			e.syncShardClocks()
			for len(e.queue) > 0 && e.queue[0].at == gt {
				ev := heap.Pop(&e.queue).(*event)
				e.dispatch(ev)
				total++
				e.m.events.Inc()
			}
			e.exchange()
			e.flushCallbacks()
			if maxEvents > 0 && total > maxEvents {
				return total, fmt.Errorf("sim: exceeded %d events; protocol not quiescing", maxEvents)
			}
			continue
		}
		limit := st + e.lookahead
		if gt < limit {
			limit = gt
		}
		if !drainAll {
			if hi := until + 1; hi > 0 && limit > hi {
				limit = hi
			}
		}
		if nShards > 1 {
			for _, c := range starts {
				c <- limit
			}
			if e.m.stall != nil {
				<-done
				firstDone := time.Now()
				for i := 1; i < nShards; i++ {
					<-done
				}
				e.m.stall.Observe(time.Since(firstDone).Seconds())
			} else {
				for i := 0; i < nShards; i++ {
					<-done
				}
			}
		} else {
			e.shards[0].runEpoch(limit)
		}
		epochEvents, busiest := 0, 0
		for _, s := range e.shards {
			if s.processed > busiest {
				busiest = s.processed
			}
			epochEvents += s.processed
			s.processed = 0
			if s.now > e.now {
				e.now = s.now
			}
		}
		total += epochEvents
		e.m.events.Add(uint64(epochEvents))
		e.m.epochs.Inc()
		if busiest > 0 {
			e.m.util.Observe(float64(epochEvents) / float64(nShards*busiest))
		}
		e.exchange()
		e.flushCallbacks()
		if maxEvents > 0 && total > maxEvents {
			return total, fmt.Errorf("sim: exceeded %d events; protocol not quiescing", maxEvents)
		}
	}
	if !drainAll && e.now < until {
		e.now = until
	}
	return total, nil
}

// exchange drains every shard's outboxes into the target shards' heaps.
// It runs on the coordinator with all shards at the barrier, so pushing
// into a foreign heap (and taking records from the foreign free-list)
// is safe. Heap order depends only on the canonical keys the messages
// carry, so the drain order does not matter.
func (e *Engine) exchange() {
	for _, src := range e.shards {
		for t := range src.out {
			msgs := src.out[t]
			if len(msgs) == 0 {
				continue
			}
			dst := e.shards[t]
			for i := range msgs {
				m := &msgs[i]
				ev := dst.newEvent()
				ev.at = m.at
				ev.src = m.src
				ev.seq = m.seq
				ev.kind = evSDeliver
				ev.h = e.hosts[m.to]
				ev.from = m.from
				ev.pkt = m.pkt
				ev.txAt = m.txAt
				ev.lossLost = m.lossLost
				heap.Push(&dst.queue, ev)
				msgs[i] = xmsg{}
			}
			e.m.xmsgs.Add(uint64(len(msgs)))
			src.out[t] = msgs[:0]
		}
	}
}

// flushCallbacks replays buffered user callbacks on the coordinator in
// canonical (at, kind, src, seq, node) order. Keys are unique — traces
// carry the delivery key, deaths and crashes the node index — so the
// replay order is a pure function of the run.
func (e *Engine) flushCallbacks() {
	total := 0
	for _, s := range e.shards {
		total += len(s.cbs)
	}
	if total == 0 {
		return
	}
	buf := e.cbScratch[:0]
	for _, s := range e.shards {
		buf = append(buf, s.cbs...)
		s.cbs = s.cbs[:0]
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := &buf[i], &buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.node < b.node
	})
	for i := range buf {
		r := &buf[i]
		switch r.kind {
		case cbTrace:
			e.cfg.Trace(r.tr)
		case cbDeath:
			e.cfg.OnDeath(int(r.node), r.at)
		case cbCrash:
			e.cfg.OnCrash(int(r.node), r.at)
		}
	}
	for i := range buf {
		buf[i] = cbRec{} // release packet references
	}
	e.cbScratch = buf[:0]
}
