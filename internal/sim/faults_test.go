package sim

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/node"
)

// rebootable is a test behavior implementing node.Rebooter: it records
// boots, reboots, timer fires, and receptions.
type rebootable struct {
	echo
	reboots int
}

func (r *rebootable) Reboot(ctx node.Context) { r.reboots++ }

func TestCrashClosesRadioAndKillsTimers(t *testing.T) {
	g := lineGraph(3)
	victim := &rebootable{}
	sender := &echo{}
	eng := newEngine(t, g, []node.Behavior{sender, victim, &echo{}}, Config{})
	eng.Boot(0)
	// The victim arms a timer before the crash; it must never fire.
	eng.Do(time.Millisecond, 1, func(ctx node.Context) {
		ctx.SetTimer(50*time.Millisecond, 7)
	})
	eng.Schedule(2*time.Millisecond, func() { eng.Crash(1) })
	eng.Schedule(10*time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("while down")) })
	eng.Run(100 * time.Millisecond)
	if len(victim.timers) != 0 {
		t.Fatalf("pre-crash timer fired on crashed node: %v", victim.timers)
	}
	if len(victim.received) != 0 {
		t.Fatalf("crashed node received %d packets", len(victim.received))
	}
	if eng.Alive(1) {
		t.Fatal("victim alive after Crash")
	}
}

func TestRebootCallsRebooterNotStart(t *testing.T) {
	g := lineGraph(3)
	victim := &rebootable{}
	sender := &echo{}
	eng := newEngine(t, g, []node.Behavior{sender, victim, &echo{}}, Config{})
	eng.Boot(0)
	eng.Schedule(2*time.Millisecond, func() { eng.Crash(1) })
	eng.Schedule(10*time.Millisecond, func() { eng.Reboot(1) })
	eng.Schedule(20*time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("after reboot")) })
	eng.Run(100 * time.Millisecond)
	if victim.started != 1 {
		t.Fatalf("Start ran %d times; a warm reboot must not re-run it", victim.started)
	}
	if victim.reboots != 1 {
		t.Fatalf("Reboot ran %d times, want 1", victim.reboots)
	}
	if len(victim.received) != 1 {
		t.Fatalf("rebooted node received %d packets, want 1", len(victim.received))
	}
}

func TestRebootFallsBackToStart(t *testing.T) {
	g := lineGraph(2)
	victim := &echo{} // does not implement node.Rebooter
	eng := newEngine(t, g, []node.Behavior{&echo{}, victim}, Config{})
	eng.Boot(0)
	eng.Schedule(2*time.Millisecond, func() { eng.Crash(1) })
	eng.Schedule(10*time.Millisecond, func() { eng.Reboot(1) })
	eng.Run(100 * time.Millisecond)
	if victim.started != 2 {
		t.Fatalf("Start ran %d times, want 2 (boot + cold reboot)", victim.started)
	}
}

func TestPlanScheduledCrashAndReboot(t *testing.T) {
	g := lineGraph(3)
	victim := &rebootable{}
	sender := &echo{}
	var crashes []int
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.KindCrash, At: 5 * time.Millisecond, Node: 1},
		{Kind: faults.KindReboot, At: 30 * time.Millisecond, Node: 1},
	}}
	eng := newEngine(t, g, []node.Behavior{sender, victim, &echo{}}, Config{
		Faults:  plan,
		OnCrash: func(i int, _ time.Duration) { crashes = append(crashes, i) },
	})
	eng.Boot(0)
	eng.Schedule(10*time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("down")) })
	eng.Schedule(50*time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("up")) })
	eng.Run(100 * time.Millisecond)
	if len(crashes) != 1 || crashes[0] != 1 {
		t.Fatalf("OnCrash saw %v", crashes)
	}
	if victim.reboots != 1 {
		t.Fatalf("reboots = %d, want 1", victim.reboots)
	}
	if len(victim.received) != 1 || string(victim.packets[0]) != "up" {
		t.Fatalf("victim received %d packets (want only the post-reboot one)", len(victim.received))
	}
}

func TestBurstDropsAtTargetReceiver(t *testing.T) {
	g := lineGraph(2)
	rcv := &echo{}
	// LossGood=1 drops every arrival from the first packet on.
	plan := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindBurst, At: 0, Until: time.Second,
		Nodes: []int{1}, LossGood: 1, LossBad: 1,
	}}}
	eng := newEngine(t, g, []node.Behavior{&echo{}, rcv}, Config{Faults: plan})
	eng.Boot(0)
	for k := 0; k < 5; k++ {
		k := k
		eng.Schedule(time.Duration(k+1)*time.Millisecond, func() {
			eng.hosts[0].Broadcast([]byte("x"))
		})
	}
	eng.Run(2 * time.Second)
	if len(rcv.received) != 0 {
		t.Fatalf("receiver got %d packets through a total burst", len(rcv.received))
	}
}

func TestPartitionBlocksOnlyBoundaryTraffic(t *testing.T) {
	g := cliqueGraph(4) // 0,1 on one side; 2,3 on the other
	bs := []*echo{{}, {}, {}, {}}
	behaviors := make([]node.Behavior, 4)
	for i, b := range bs {
		behaviors[i] = b
	}
	plan := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindPartition, At: 0, Until: time.Second, Nodes: []int{0, 1},
	}}}
	eng := newEngine(t, g, behaviors, Config{Faults: plan})
	eng.Boot(0)
	eng.Schedule(time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("from 0")) })
	eng.Schedule(2*time.Millisecond, func() { eng.hosts[2].Broadcast([]byte("from 2")) })
	eng.Run(500 * time.Millisecond)
	if len(bs[1].received) != 1 || bs[1].received[0] != 0 {
		t.Fatalf("intra-group delivery 0->1 failed: %v", bs[1].received)
	}
	if len(bs[3].received) != 1 || bs[3].received[0] != 2 {
		t.Fatalf("intra-group delivery 2->3 failed: %v", bs[3].received)
	}
	for _, i := range []int{2, 3} {
		for _, from := range bs[i].received {
			if from == 0 {
				t.Fatalf("packet crossed the partition to node %d", i)
			}
		}
	}
	for _, from := range bs[0].received {
		if from == 2 {
			t.Fatal("packet crossed the partition into the group")
		}
	}
	// After the window closes, traffic flows again.
	eng.Schedule(1100*time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("late")) })
	eng.Run(2 * time.Second)
	found := false
	for _, from := range bs[2].received {
		if from == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("partition did not lift at the window end")
	}
}

func TestJitterScaleDelaysDelivery(t *testing.T) {
	g := lineGraph(2)
	rcv := &echo{}
	var deliveredAt time.Duration
	plan := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindJitterScale, At: 0, Until: 10 * time.Second, Factor: 1000,
	}}}
	eng := newEngine(t, g, []node.Behavior{&echo{}, rcv}, Config{
		Faults: plan,
		Jitter: time.Millisecond,
		Trace: func(ev TraceEvent) {
			if ev.To == 1 && !ev.Lost {
				deliveredAt = ev.At
			}
		},
	})
	eng.Boot(0)
	eng.Schedule(time.Millisecond, func() { eng.hosts[0].Broadcast([]byte("x")) })
	eng.Run(10 * time.Second)
	_ = deliveredAt // trace records send time; measure via reception instead
	if len(rcv.received) != 1 {
		t.Fatalf("received %d packets, want 1", len(rcv.received))
	}
	// With the base 1ms jitter scaled by 1000, the uniform draw lands in
	// [0, 1s); under this seed it exceeds the unscaled 1ms bound by far.
	// (Deterministic: seed 1, single medium draw.)
	if now := eng.Now(); now < 2*time.Millisecond {
		t.Fatalf("engine idle at %v; scaled jitter had no effect", now)
	}
}

// TestFaultPlanPreservesMediumStream pins the determinism contract: adding
// a fault event that targets one receiver must not change the independent
// Config.Loss outcomes experienced by any other receiver, because the
// injector draws from its own split streams and the medium's Loss draw
// happens unconditionally.
func TestFaultPlanPreservesMediumStream(t *testing.T) {
	type flatEvent struct {
		At       time.Duration
		From, To node.ID
		Lost     bool
	}
	run := func(plan *faults.Plan) []flatEvent {
		g := cliqueGraph(4)
		var evs []flatEvent
		behaviors := []node.Behavior{&echo{}, &echo{}, &echo{}, &echo{}}
		eng := newEngine(t, g, behaviors, Config{
			Seed:   99,
			Loss:   0.5,
			Faults: plan,
			Trace: func(ev TraceEvent) {
				if ev.To != 3 { // ignore the faulted receiver
					evs = append(evs, flatEvent{At: ev.At, From: ev.From, To: ev.To, Lost: ev.Lost})
				}
			},
		})
		eng.Boot(0)
		for k := 0; k < 20; k++ {
			k := k
			eng.Schedule(time.Duration(k+1)*time.Millisecond, func() {
				eng.hosts[k%2].Broadcast([]byte("x"))
			})
		}
		eng.Run(time.Second)
		return evs
	}
	base := run(nil)
	faulted := run(&faults.Plan{Events: []faults.Event{{
		Kind: faults.KindBurst, At: 0, Until: time.Second,
		Nodes: []int{3}, LossGood: 1, LossBad: 1,
	}}})
	if len(base) != len(faulted) {
		t.Fatalf("trace lengths differ: %d vs %d", len(base), len(faulted))
	}
	for i := range base {
		if base[i] != faulted[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, base[i], faulted[i])
		}
	}
}

// --- Config.Loss × collision-model ordering (previously untested) ---

// TestLossBeforeCollisionLostPacketNeverJams: with Loss=1 every packet is
// destroyed at transmission time, so two overlapping sends cause zero
// collisions — a lost packet never occupies the receiver's radio.
func TestLossBeforeCollisionLostPacketNeverJams(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, &echo{}, &echo{}},
		Config{Collisions: true, Loss: 1.0, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 100)
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 0 {
		t.Fatalf("receiver got %d packets with Loss=1", len(rcv.received))
	}
	if eng.Collisions(0) != 0 {
		t.Fatalf("lost packets jammed the radio: %d collisions", eng.Collisions(0))
	}
}

// TestLossBeforeCollisionSurvivorDeliversCleanly: when a fault plan
// destroys one of two overlapping transmissions, the survivor is received
// intact — loss is applied before airtime-overlap corruption.
func TestLossBeforeCollisionSurvivorDeliversCleanly(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	// Partition node 2 away: its packet dies at transmission time at
	// every boundary-crossing receiver.
	plan := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindPartition, At: 0, Until: time.Second, Nodes: []int{2},
	}}}
	eng := newEngine(t, g, []node.Behavior{rcv, &echo{}, &echo{}},
		Config{Collisions: true, Faults: plan, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 100) // 3.2ms airtime: simultaneous sends would collide
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 1 || rcv.received[0] != 1 {
		t.Fatalf("survivor not delivered cleanly: got %v", rcv.received)
	}
	if eng.Collisions(0) != 0 {
		t.Fatalf("destroyed packet corrupted the survivor: %d collisions", eng.Collisions(0))
	}
}

// TestCollisionAfterLossStillCorrupts: sanity inverse — when neither
// packet is lost, the same overlap does collide (the ordering test is
// meaningful only if the collision would otherwise happen).
func TestCollisionAfterLossStillCorrupts(t *testing.T) {
	g := cliqueGraph(3)
	rcv := &echo{}
	eng := newEngine(t, g, []node.Behavior{rcv, &echo{}, &echo{}},
		Config{Collisions: true, Jitter: 1, PropDelay: time.Millisecond})
	eng.Boot(0)
	pkt := make([]byte, 100)
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast(pkt) })
	eng.Schedule(time.Millisecond, func() { eng.hosts[2].Broadcast(pkt) })
	if _, err := eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if len(rcv.received) != 0 || eng.Collisions(0) == 0 {
		t.Fatalf("expected a collision: received=%d collisions=%d",
			len(rcv.received), eng.Collisions(0))
	}
}

// TestMovingPartitionSweepsThroughLine drives the geometry-scoped fault
// end to end: a 4-node line at x = 0..3, with a 1-unit band sweeping
// right at 1 unit/s. The band reaches the 1-2 link gap at different
// times, so the same link is open, then cut, then open again.
func TestMovingPartitionSweepsThroughLine(t *testing.T) {
	g := lineGraph(4)
	bs := []*echo{{}, {}, {}, {}}
	behaviors := make([]node.Behavior, 4)
	for i, b := range bs {
		behaviors[i] = b
	}
	// Band starts at [0.5, 1.5): nodes at x=1 inside, x=0 and x=2 out.
	// At t=1s it covers [1.5, 2.5): only x=2 inside.
	plan := &faults.Plan{Events: []faults.Event{{
		Kind: faults.KindMovingPartition, At: 0, Until: 10 * time.Second,
		X0: 0.5, Width: 1, Vel: 1,
	}}}
	eng := newEngine(t, g, behaviors, Config{Faults: plan})
	eng.Boot(0)
	// t=1ms: band holds node 1 only; its links to 0 and 2 are cut.
	eng.Schedule(time.Millisecond, func() { eng.hosts[1].Broadcast([]byte("early")) })
	// t=3s: band [3.5, 4.5) is past every node; the line is whole again.
	eng.Schedule(3*time.Second, func() { eng.hosts[1].Broadcast([]byte("late")) })
	eng.Run(5 * time.Second)
	for _, i := range []int{0, 2} {
		if len(bs[i].received) != 1 || string(bs[i].packets[0]) != "late" {
			t.Fatalf("node %d received %d packets (want only the post-sweep one)", i, len(bs[i].received))
		}
	}
}
