package geom

// Property tests for Grid.Move, the incremental position update the
// mobility model drives. The invariant: after any sequence of moves, a
// mutated grid answers Within exactly like a grid freshly built from
// the current positions — for every point, at every step, including
// moves that cross the torus wrap seam and land on exact cell edges.

import (
	"testing"

	"repro/internal/xrand"
)

// checkMovedGridMatchesFresh compares the mutated grid's Within answers
// against a freshly built grid and the brute-force reference at every
// indexed point.
func checkMovedGridMatchesFresh(t *testing.T, g *Grid, pts []Point, side, radius float64, metric Metric, step int) {
	t.Helper()
	fresh := NewGrid(append([]Point(nil), pts...), side, radius, metric)
	for i := range pts {
		got := sorted(g.Within(nil, pts[i], radius, int32(i)))
		want := sorted(fresh.Within(nil, pts[i], radius, int32(i)))
		if !equalIDs(got, want) {
			t.Fatalf("step %d metric=%v query %d: moved grid %v != fresh grid %v",
				step, metric, i, got, want)
		}
		brute := sorted(bruteWithin(pts, pts[i], radius, side, metric, int32(i)))
		if !equalIDs(got, brute) {
			t.Fatalf("step %d metric=%v query %d: moved grid %v != brute force %v",
				step, metric, i, got, brute)
		}
	}
}

// TestGridMoveMatchesFreshBuild walks random points through random
// displacement sequences and pins the moved grid to the fresh-build
// reference at every step, under both metrics.
func TestGridMoveMatchesFreshBuild(t *testing.T) {
	const (
		side   = 10.0
		radius = 1.3
		n      = 80
		steps  = 60
	)
	for _, metric := range []Metric{Planar, Torus} {
		rng := xrand.New(31)
		pts := UniformPoints(rng, n, side)
		g := NewGrid(pts, side, radius, metric)
		for step := 0; step < steps; step++ {
			i := int(rng.Uint64n(n))
			// Jumps of up to two cells in each axis so moves regularly
			// cross cell and column boundaries.
			p := Point{
				X: pts[i].X + (rng.Float64()-0.5)*4*radius,
				Y: pts[i].Y + (rng.Float64()-0.5)*4*radius,
			}
			// Wrap into [0, side) the way a torus mobility model does;
			// on the plane this doubles as a clamp-free reflection.
			p.X = wrapCoord(p.X, side)
			p.Y = wrapCoord(p.Y, side)
			g.Move(i, p)
			if pts[i] != p {
				t.Fatalf("step %d: Move did not update the shared point slice", step)
			}
			checkMovedGridMatchesFresh(t, g, pts, side, radius, metric, step)
		}
	}
}

// TestGridMoveTorusColumnCrossing drives one point across the wrap seam
// in small steps — last column to column 0 and back — plus exact-edge
// landings, the coordinates where bucket migration is easiest to get
// wrong.
func TestGridMoveTorusColumnCrossing(t *testing.T) {
	const (
		side   = 8.0
		radius = 1.0
	)
	rng := xrand.New(32)
	pts := UniformPoints(rng, 60, side)
	pts[0] = Point{X: side - 0.05, Y: 3.0}
	g := NewGrid(pts, side, radius, Torus)
	path := []Point{
		{X: side - 0.01, Y: 3.0},
		{X: 0.0, Y: 3.0},         // exactly on the seam
		{X: 0.02, Y: 3.0},        // wrapped into column 0
		{X: radius, Y: 3.0},      // exactly on a cell edge
		{X: side - 0.02, Y: 3.0}, // back across the seam
		{X: side / 2, Y: side},   // Y == side: wraps to row 0
		{X: 0.5, Y: 0.5},
	}
	for step, p := range path {
		g.Move(0, p)
		checkMovedGridMatchesFresh(t, g, pts, side, radius, Torus, step)
	}
}

// TestGridMoveSameCellNoop: a move within one cell must not disturb
// bucket order — the grid still matches a fresh build, and repeated
// in-cell moves never duplicate the index.
func TestGridMoveSameCellNoop(t *testing.T) {
	const (
		side   = 6.0
		radius = 2.0
	)
	pts := []Point{{X: 1.0, Y: 1.0}, {X: 1.2, Y: 1.1}, {X: 5.0, Y: 5.0}}
	g := NewGrid(pts, side, radius, Planar)
	for step := 0; step < 5; step++ {
		g.Move(0, Point{X: 1.0 + float64(step)*0.1, Y: 1.0})
		checkMovedGridMatchesFresh(t, g, pts, side, radius, Planar, step)
	}
	total := 0
	for _, b := range g.buckets {
		total += len(b)
	}
	if total != len(pts) {
		t.Fatalf("bucket entries %d != %d points after in-cell moves", total, len(pts))
	}
}

// wrapCoord maps x into [0, side).
func wrapCoord(x, side float64) float64 {
	for x < 0 {
		x += side
	}
	for x >= side {
		x -= side
	}
	return x
}
