package geom

// Boundary tests surfaced by the sharded engine: shard stripes are
// whole grid columns, so queries at exact column edges, at exactly
// X == side, and across the torus wrap are precisely the cases the
// cross-shard delivery path depends on. Every case is pinned against
// the O(n) brute-force reference under both metrics.

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// edgePoints builds a deterministic deployment that saturates the
// awkward coordinates: points exactly on every cell edge, exactly on
// the region boundary (X or Y == side, legal for callers that place
// points manually), at the four corners, at cell centers, and a random
// fill in between.
func edgePoints(rng *xrand.RNG, side, cell float64) []Point {
	var pts []Point
	ncols := int(side / cell)
	for c := 0; c <= ncols; c++ {
		edge := float64(c) * cell
		if edge > side {
			edge = side
		}
		pts = append(pts,
			Point{X: edge, Y: side / 2},
			Point{X: side / 2, Y: edge},
			Point{X: edge, Y: edge},
			Point{X: edge, Y: rng.Float64() * side},
		)
	}
	pts = append(pts,
		Point{X: 0, Y: 0}, Point{X: side, Y: 0},
		Point{X: 0, Y: side}, Point{X: side, Y: side},
		Point{X: side / 2, Y: side / 2},
	)
	for i := 0; i < 120; i++ {
		pts = append(pts, Point{X: rng.Float64() * side, Y: rng.Float64() * side})
	}
	return pts
}

// TestGridBoundaryExactEdges: queries from every point of the edge-rich
// deployment — including the ones at exactly X == side, which clamp
// into the last grid column — must match brute force under both
// metrics, at the build radius and at a smaller one.
func TestGridBoundaryExactEdges(t *testing.T) {
	const side, radius = 12.0, 2.0
	rng := xrand.New(21)
	pts := edgePoints(rng, side, radius)
	for _, metric := range []Metric{Planar, Torus} {
		g := NewGrid(pts, side, radius, metric)
		for _, r := range []float64{radius, 0.75} {
			for i := range pts {
				got := sorted(g.Within(nil, pts[i], r, int32(i)))
				want := sorted(bruteWithin(pts, pts[i], r, side, metric, int32(i)))
				if !equalIDs(got, want) {
					t.Fatalf("metric=%v r=%v query=%v: grid %v != brute %v",
						metric, r, pts[i], got, want)
				}
			}
		}
	}
}

// TestGridQueryBeyondLastColumn pins the clamp in Within directly: a
// query point at exactly X == side (or Y == side) must see the same
// neighbors as the equivalent wrapped query at 0 on the torus, and the
// brute-force set on the plane — not a 3x3 block centered one column
// out of range.
func TestGridQueryBeyondLastColumn(t *testing.T) {
	const side, radius = 10.0, 1.0
	rng := xrand.New(22)
	pts := UniformPoints(rng, 500, side)
	for _, metric := range []Metric{Planar, Torus} {
		g := NewGrid(pts, side, radius, metric)
		queries := []Point{
			{X: side, Y: 4.7},
			{X: 3.3, Y: side},
			{X: side, Y: side},
			{X: side, Y: 0},
			// math.Nextafter(side, 0) is the largest representable
			// coordinate strictly inside the region; its X/cell can
			// still round to nx in floating point.
			{X: math.Nextafter(side, 0), Y: 2.2},
		}
		for _, q := range queries {
			got := sorted(g.Within(nil, q, radius, -1))
			want := sorted(bruteWithin(pts, q, radius, side, metric, -1))
			if !equalIDs(got, want) {
				t.Fatalf("metric=%v query=%v: grid %v != brute %v", metric, q, got, want)
			}
		}
		if metric == Torus {
			// X == side is the same torus point as X == 0.
			a := sorted(g.Within(nil, Point{X: side, Y: 5}, radius, -1))
			b := sorted(g.Within(nil, Point{X: 0, Y: 5}, radius, -1))
			if !equalIDs(a, b) {
				t.Fatalf("torus: query at side %v != query at 0 %v", a, b)
			}
		}
	}
}

// TestGridTorusWrapAcrossShardBorder places tight clusters on both
// sides of the wrap seam — the border between the first and last shard
// stripe — and checks each side sees the other through the wrap, while
// the planar grid on the same points correctly does not.
func TestGridTorusWrapAcrossShardBorder(t *testing.T) {
	const side, radius = 8.0, 1.0
	pts := []Point{
		{X: 0.1, Y: 3.0}, {X: 0.3, Y: 3.1}, // just right of the seam
		{X: 7.8, Y: 3.0}, {X: 7.95, Y: 2.9}, // just left of the seam
		{X: 4.0, Y: 3.0}, // far from it
	}
	gt := NewGrid(pts, side, radius, Torus)
	gp := NewGrid(pts, side, radius, Planar)
	for i := range pts {
		gotT := sorted(gt.Within(nil, pts[i], radius, int32(i)))
		wantT := sorted(bruteWithin(pts, pts[i], radius, side, Torus, int32(i)))
		if !equalIDs(gotT, wantT) {
			t.Fatalf("torus query %d: grid %v != brute %v", i, gotT, wantT)
		}
		gotP := sorted(gp.Within(nil, pts[i], radius, int32(i)))
		wantP := sorted(bruteWithin(pts, pts[i], radius, side, Planar, int32(i)))
		if !equalIDs(gotP, wantP) {
			t.Fatalf("planar query %d: grid %v != brute %v", i, gotP, wantP)
		}
	}
	// The seam clusters must be mutual torus neighbors and planar strangers.
	if n := gt.Within(nil, pts[0], radius, 0); len(n) != 3 {
		t.Fatalf("torus: node 0 sees %v, want the seam cluster {1,2,3}", n)
	}
	if n := gp.Within(nil, pts[0], radius, 0); len(n) != 1 {
		t.Fatalf("planar: node 0 sees %v, want only {1}", n)
	}
}

// TestGridMetricsAgreeAwayFromBoundary: for queries more than radius
// away from every region edge no pair can wrap, so both metrics must
// return the identical neighbor set — shard borders interior to the
// region are invisible to the metric.
func TestGridMetricsAgreeAwayFromBoundary(t *testing.T) {
	const side, radius = 10.0, 1.0
	rng := xrand.New(23)
	pts := UniformPoints(rng, 600, side)
	gt := NewGrid(pts, side, radius, Torus)
	gp := NewGrid(pts, side, radius, Planar)
	checked := 0
	for i, p := range pts {
		if p.X < radius || p.X > side-radius || p.Y < radius || p.Y > side-radius {
			continue
		}
		checked++
		a := sorted(gt.Within(nil, p, radius, int32(i)))
		b := sorted(gp.Within(nil, p, radius, int32(i)))
		if !equalIDs(a, b) {
			t.Fatalf("interior node %d: torus %v != planar %v", i, a, b)
		}
	}
	if checked < 300 {
		t.Fatalf("only %d interior nodes; deployment too small to mean anything", checked)
	}
}

// TestShardStripesPartition checks the stripe assignment's contract:
// values in [0, shards), stripes contiguous and non-decreasing along
// x (whole columns), boundary points included, counts roughly
// balanced, and the assignment a pure function of the points.
func TestShardStripesPartition(t *testing.T) {
	const side, radius = 12.0, 1.5
	rng := xrand.New(24)
	pts := edgePoints(rng, side, radius)
	g := NewGrid(pts, side, radius, Torus)
	for _, shards := range []int{1, 2, 3, 4, 7} {
		got := g.ShardStripes(shards)
		if len(got) != len(pts) {
			t.Fatalf("shards=%d: %d assignments for %d points", shards, len(got), len(pts))
		}
		counts := make([]int, shards)
		for i, s := range got {
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: point %d assigned %d", shards, i, s)
			}
			counts[s]++
		}
		// Contiguity: stripe index is monotone in grid column (points at
		// exactly X == side wrap to column 0, so compare columns, not raw
		// x). Same-column points must share a stripe.
		for i, p := range pts {
			for j, q := range pts {
				ci, cj := g.colOf(p), g.colOf(q)
				if ci < cj && got[i] > got[j] {
					t.Fatalf("shards=%d: col %d in stripe %d but col %d in stripe %d",
						shards, ci, got[i], cj, got[j])
				}
				if ci == cj && got[i] != got[j] {
					t.Fatalf("shards=%d: column %d split across stripes %d and %d",
						shards, ci, got[i], got[j])
				}
			}
		}
		// Balance: the greedy column partition keeps every stripe within
		// one column's worth of the ideal share.
		ideal := float64(len(pts)) / float64(shards)
		maxCol := 0
		colCount := map[int]int{}
		for _, p := range pts {
			colCount[g.colOf(p)]++
		}
		for _, c := range colCount {
			if c > maxCol {
				maxCol = c
			}
		}
		for s, c := range counts {
			if float64(c) > ideal+float64(maxCol) {
				t.Errorf("shards=%d stripe %d has %d points (ideal %.1f, max column %d)",
					shards, s, c, ideal, maxCol)
			}
		}
		// Purity.
		again := g.ShardStripes(shards)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("shards=%d: assignment not deterministic at %d", shards, i)
			}
		}
	}
}

// TestShardStripesSingleColumn: with one grid column (region no wider
// than the radius) stripes fall back to index balancing.
func TestShardStripesSingleColumn(t *testing.T) {
	pts := UniformPoints(xrand.New(25), 90, 1.0)
	g := NewGrid(pts, 1.0, 1.0, Torus)
	got := g.ShardStripes(3)
	counts := make([]int, 3)
	prev := 0
	for i, s := range got {
		if s < prev {
			t.Fatalf("index balancing not monotone at %d: %d after %d", i, s, prev)
		}
		prev = s
		counts[s]++
	}
	for s, c := range counts {
		if c != 30 {
			t.Fatalf("stripe %d has %d points, want 30", s, c)
		}
	}
}

// TestShardStripesPanicsOnZero pins the constructor contract.
func TestShardStripesPanicsOnZero(t *testing.T) {
	g := NewGrid([]Point{{X: 0.5, Y: 0.5}}, 1, 1, Torus)
	defer func() {
		if recover() == nil {
			t.Fatal("ShardStripes(0) did not panic")
		}
	}()
	g.ShardStripes(0)
}
