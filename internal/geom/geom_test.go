package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := Dist(p, q); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := Dist2(p, q); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
}

func TestTorusDistWraps(t *testing.T) {
	const side = 10.0
	p := Point{0.5, 0.5}
	q := Point{9.5, 9.5}
	// Wrapping distance is sqrt(1^2+1^2), not sqrt(9^2+9^2).
	want := math.Sqrt(2)
	if got := TorusDist(p, q, side); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TorusDist = %v, want %v", got, want)
	}
}

func TestTorusDistSymmetric(t *testing.T) {
	rng := xrand.New(1)
	f := func(ax, ay, bx, by uint16) bool {
		const side = 100.0
		p := Point{float64(ax) / 656.0, float64(ay) / 656.0}
		q := Point{float64(bx) / 656.0, float64(by) / 656.0}
		d1 := TorusDist(p, q, side)
		d2 := TorusDist(q, p, side)
		return math.Abs(d1-d2) < 1e-9 && d1 <= side*math.Sqrt2/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestTorusDistNeverExceedsPlanar(t *testing.T) {
	rng := xrand.New(2)
	const side = 50.0
	for i := 0; i < 1000; i++ {
		p := Point{rng.Float64() * side, rng.Float64() * side}
		q := Point{rng.Float64() * side, rng.Float64() * side}
		if TorusDist(p, q, side) > Dist(p, q)+1e-9 {
			t.Fatalf("torus distance exceeds planar for %v %v", p, q)
		}
	}
}

func TestUniformPointsInBounds(t *testing.T) {
	rng := xrand.New(3)
	const side = 42.0
	pts := UniformPoints(rng, 5000, side)
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= side || p.Y < 0 || p.Y >= side {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
}

func TestUniformPointsCoverage(t *testing.T) {
	// Each quadrant should receive roughly a quarter of the points.
	rng := xrand.New(4)
	const side, n = 10.0, 40000
	pts := UniformPoints(rng, n, side)
	var q [4]int
	for _, p := range pts {
		idx := 0
		if p.X >= side/2 {
			idx |= 1
		}
		if p.Y >= side/2 {
			idx |= 2
		}
		q[idx]++
	}
	for i, c := range q {
		if math.Abs(float64(c)-n/4) > 5*math.Sqrt(n/4) {
			t.Fatalf("quadrant %d count %d far from %d", i, c, n/4)
		}
	}
}

// bruteWithin is the O(n) reference implementation for grid queries.
func bruteWithin(pts []Point, p Point, radius, side float64, metric Metric, exclude int32) []int32 {
	var out []int32
	r2 := radius * radius
	for i, q := range pts {
		if int32(i) == exclude {
			continue
		}
		var d2 float64
		if metric == Torus {
			d2 = TorusDist2(p, q, side)
		} else {
			d2 = Dist2(p, q)
		}
		if d2 <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

func sorted(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := xrand.New(5)
	const side = 20.0
	for _, metric := range []Metric{Planar, Torus} {
		for _, radius := range []float64{0.5, 1.3, 3.0, 7.0} {
			pts := UniformPoints(rng, 400, side)
			g := NewGrid(pts, side, radius, metric)
			for trial := 0; trial < 50; trial++ {
				i := int32(rng.Intn(len(pts)))
				got := sorted(g.Within(nil, pts[i], radius, i))
				want := sorted(bruteWithin(pts, pts[i], radius, side, metric, i))
				if !equalIDs(got, want) {
					t.Fatalf("metric=%v radius=%v node=%d: grid %v != brute %v",
						metric, radius, i, got, want)
				}
			}
		}
	}
}

func TestGridSmallerQueryRadius(t *testing.T) {
	// Querying with a radius below maxRadius must still be exact.
	rng := xrand.New(6)
	const side = 15.0
	pts := UniformPoints(rng, 300, side)
	g := NewGrid(pts, side, 4.0, Torus)
	for trial := 0; trial < 30; trial++ {
		i := int32(rng.Intn(len(pts)))
		got := sorted(g.Within(nil, pts[i], 2.5, i))
		want := sorted(bruteWithin(pts, pts[i], 2.5, side, Torus, i))
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: grid %v != brute %v", trial, got, want)
		}
	}
}

func TestGridExclude(t *testing.T) {
	pts := []Point{{1, 1}, {1.1, 1}, {5, 5}}
	g := NewGrid(pts, 10, 1, Planar)
	got := g.Within(nil, pts[0], 1, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within with exclude: got %v, want [1]", got)
	}
	all := g.Within(nil, pts[0], 1, -1)
	if len(all) != 2 {
		t.Fatalf("Within without exclude: got %v, want self+neighbor", all)
	}
}

func TestGridTinyTorus(t *testing.T) {
	// Radius close to side forces the single-bucket path on a torus.
	pts := []Point{{0.1, 0.1}, {9.9, 9.9}, {5, 5}}
	g := NewGrid(pts, 10, 6, Torus)
	got := sorted(g.Within(nil, pts[0], 1.0, 0))
	// Node 1 wraps to distance sqrt(0.08) ~ 0.28 from node 0.
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("tiny torus query: got %v, want [1]", got)
	}
}

func TestGridPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero side":   func() { NewGrid(nil, 0, 1, Planar) },
		"zero radius": func() { NewGrid(nil, 1, 0, Planar) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMetricString(t *testing.T) {
	if Planar.String() != "planar" || Torus.String() != "torus" {
		t.Fatal("Metric.String mismatch")
	}
	if Metric(99).String() != "unknown" {
		t.Fatal("unknown metric should stringify as unknown")
	}
}

func BenchmarkGridWithin(b *testing.B) {
	rng := xrand.New(7)
	const side = 100.0
	pts := UniformPoints(rng, 10000, side)
	g := NewGrid(pts, side, 2.0, Torus)
	buf := make([]int32, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(buf[:0], pts[i%len(pts)], 2.0, int32(i%len(pts)))
	}
}
