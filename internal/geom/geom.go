// Package geom provides the planar geometry used to deploy simulated sensor
// fields: points, distances (planar and toroidal), uniform deployment, and a
// uniform-grid spatial index for radius queries.
//
// The paper deploys 2500-3600 nodes uniformly at random over a square region
// and connects nodes within radio range (a unit-disk graph). The evaluation
// figures are functions of network *density* (mean neighbors per node), so
// the experiments in this repository deploy on a torus by default: wrapping
// distance removes boundary effects and makes the realized density match the
// analytic target exactly, which is what the paper's density axis assumes.
// Planar distance is also provided for realism-oriented scenarios.
package geom

import "math"

// Point is a position in the deployment region.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector (represented as a Point).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist2 returns the squared Euclidean (planar) distance between p and q.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean (planar) distance between p and q.
func Dist(p, q Point) float64 { return math.Sqrt(Dist2(p, q)) }

// TorusDist2 returns the squared distance between p and q on a torus of the
// given side length (coordinates are assumed to lie in [0, side)).
func TorusDist2(p, q Point, side float64) float64 {
	dx := wrapDelta(p.X-q.X, side)
	dy := wrapDelta(p.Y-q.Y, side)
	return dx*dx + dy*dy
}

// TorusDist returns the toroidal distance between p and q.
func TorusDist(p, q Point, side float64) float64 {
	return math.Sqrt(TorusDist2(p, q, side))
}

// wrapDelta maps a coordinate difference into [-side/2, side/2].
func wrapDelta(d, side float64) float64 {
	if d > side/2 {
		d -= side
	} else if d < -side/2 {
		d += side
	}
	return d
}

// Metric selects how distances are measured over the deployment square.
type Metric int

const (
	// Planar uses ordinary Euclidean distance; nodes near the boundary
	// have truncated neighborhoods.
	Planar Metric = iota
	// Torus wraps the square so every node sees a full disk neighborhood;
	// the realized mean degree then matches the analytic density exactly.
	Torus
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case Planar:
		return "planar"
	case Torus:
		return "torus"
	default:
		return "unknown"
	}
}

// Sampler abstracts the random source geom needs, so geom does not import
// internal/xrand (and stays trivially testable with a fixed sequence).
type Sampler interface {
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
}

// UniformPoints deploys n points independently and uniformly at random over
// the square [0, side) x [0, side).
func UniformPoints(rng Sampler, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// Grid is a uniform-grid spatial index over a fixed set of points in
// [0, side) x [0, side). With cell size >= the query radius, a radius query
// inspects at most the 3x3 block of cells around the query point, giving
// expected O(1) work per query at constant density — the difference between
// O(n) and O(n^2) total work when building multi-thousand-node topologies.
type Grid struct {
	side     float64
	cell     float64
	nx       int
	pts      []Point
	buckets  [][]int32
	metric   Metric
	wrapping bool
}

// NewGrid indexes pts (all within [0, side) x [0, side)) for radius queries
// up to maxRadius under the given metric.
func NewGrid(pts []Point, side, maxRadius float64, metric Metric) *Grid {
	if side <= 0 {
		panic("geom: NewGrid with side <= 0")
	}
	if maxRadius <= 0 {
		panic("geom: NewGrid with maxRadius <= 0")
	}
	nx := int(side / maxRadius)
	if nx < 1 {
		nx = 1
	}
	// On a torus with fewer than 3 cells per axis the 3x3 neighborhood scan
	// would visit cells twice; collapse to a single bucket instead.
	if metric == Torus && nx < 3 {
		nx = 1
	}
	g := &Grid{
		side:     side,
		cell:     side / float64(nx),
		nx:       nx,
		pts:      pts,
		buckets:  make([][]int32, nx*nx),
		metric:   metric,
		wrapping: metric == Torus,
	}
	for i, p := range pts {
		g.buckets[g.bucketOf(p)] = append(g.buckets[g.bucketOf(p)], int32(i))
	}
	return g
}

// cellIndex maps one coordinate to its grid cell. Coordinates outside
// [0, side) — a point placed at exactly X == side, or an X/cell that
// rounds up to nx in floating point — wrap on a torus (side is the
// same torus position as 0, so the wrapped cell is the geometrically
// correct one) and clamp on the plane. Clamping on a torus was the
// latent bug: a point at X == side landed in the last column, two
// cells away from the column-0 neighbors a 3x3 scan around them would
// actually visit.
func (g *Grid) cellIndex(x float64) int {
	c := int(x / g.cell)
	if c >= 0 && c < g.nx {
		return c
	}
	if g.wrapping {
		return mod(c, g.nx)
	}
	if c >= g.nx {
		return g.nx - 1
	}
	return 0
}

func (g *Grid) bucketOf(p Point) int {
	return g.cellIndex(p.Y)*g.nx + g.cellIndex(p.X)
}

// dist2 measures squared distance under the grid's metric.
func (g *Grid) dist2(p, q Point) float64 {
	if g.wrapping {
		return TorusDist2(p, q, g.side)
	}
	return Dist2(p, q)
}

// Within appends to dst the indices of all indexed points within radius of
// p (excluding the point with index exclude; pass -1 to keep all) and
// returns the extended slice. Radius must not exceed the maxRadius the grid
// was built with.
func (g *Grid) Within(dst []int32, p Point, radius float64, exclude int32) []int32 {
	r2 := radius * radius
	if g.nx == 1 {
		for _, idx := range g.buckets[0] {
			if idx != exclude && g.dist2(p, g.pts[idx]) <= r2 {
				dst = append(dst, idx)
			}
		}
		return dst
	}
	// Resolve the center cell exactly as bucketOf does (wrap on torus,
	// clamp on plane), so a query at exactly X == side scans the same
	// 3x3 block as the points bucketed there.
	cx := g.cellIndex(p.X)
	cy := g.cellIndex(p.Y)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			bx, by := cx+dx, cy+dy
			if g.wrapping {
				bx = mod(bx, g.nx)
				by = mod(by, g.nx)
			} else if bx < 0 || bx >= g.nx || by < 0 || by >= g.nx {
				continue
			}
			for _, idx := range g.buckets[by*g.nx+bx] {
				if idx != exclude && g.dist2(p, g.pts[idx]) <= r2 {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// Move updates indexed point i to position p incrementally: the stored
// coordinate changes and the index migrates between buckets only when
// the cell actually changes. Bucket-internal order is preserved on
// removal, so a grid mutated by any sequence of Moves answers Within
// identically to a grid freshly built from the final positions — the
// property the mobility model depends on and geom's move property test
// pins. The grid indexes the caller's point slice, so the caller
// observes the new coordinate too.
func (g *Grid) Move(i int, p Point) {
	old := g.bucketOf(g.pts[i])
	g.pts[i] = p
	nw := g.bucketOf(p)
	if old == nw {
		return
	}
	b := g.buckets[old]
	for k, idx := range b {
		if idx == int32(i) {
			g.buckets[old] = append(b[:k], b[k+1:]...)
			break
		}
	}
	g.buckets[nw] = append(g.buckets[nw], int32(i))
}

// colOf returns the grid column of p, as bucketOf computes it.
func (g *Grid) colOf(p Point) int { return g.cellIndex(p.X) }

// ShardStripes partitions the indexed points into `shards` contiguous
// vertical stripes of whole grid columns, greedily balanced by point
// count, and returns each point's stripe index (values in [0, shards)).
// Stripes of whole columns mean every point's radio disk overlaps at
// most the two adjacent stripes, which is what keeps most deliveries
// intra-shard when the simulator uses the stripes as its shard
// assignment. With fewer columns than shards the trailing stripes are
// empty; the assignment is a pure function of the indexed points.
func (g *Grid) ShardStripes(shards int) []int {
	if shards < 1 {
		panic("geom: ShardStripes with shards < 1")
	}
	out := make([]int, len(g.pts))
	if shards == 1 || g.nx == 1 {
		if shards > 1 {
			// Single column: balance by index order instead.
			for i := range out {
				out[i] = i * shards / len(out)
			}
		}
		return out
	}
	colCount := make([]int, g.nx)
	for _, p := range g.pts {
		colCount[g.colOf(p)]++
	}
	// Greedy linear partition: close a stripe once its cumulative count
	// reaches the ideal share of total points.
	stripeOfCol := make([]int, g.nx)
	total := len(g.pts)
	run, stripe := 0, 0
	for c := 0; c < g.nx; c++ {
		stripeOfCol[c] = stripe
		run += colCount[c]
		for stripe < shards-1 && run*shards >= (stripe+1)*total {
			stripe++
		}
	}
	for i, p := range g.pts {
		out[i] = stripeOfCol[g.colOf(p)]
	}
	return out
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
