package adversary

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/baseline/globalkey"
	"repro/internal/baseline/randomkp"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/node"
	"repro/internal/wire"
	"repro/internal/xrand"
)

func setup(t *testing.T, n int, density float64, seed uint64) *core.Deployment {
	t.Helper()
	d, err := core.Deploy(core.DeployOptions{N: n, Density: density, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunSetup(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSchemeInterfaceCompliance(t *testing.T) {
	var _ baseline.Scheme = (*ProtocolScheme)(nil)
}

func TestCaptureIsLocal(t *testing.T) {
	d := setup(t, 200, 12, 1)
	s := NewProtocolScheme(d)
	rep := s.Capture([]int{50})
	if rep.TotalLinks == 0 {
		t.Fatal("no links")
	}
	frac := rep.Fraction()
	if frac == 0 {
		// The captured node's neighbor-cluster traffic leaks, so in a
		// 200-node network some small fraction should be readable.
		t.Log("capture leaked nothing (captured node may be isolated in key terms)")
	}
	if frac > 0.25 {
		t.Fatalf("single capture compromised %v of a 200-node network", frac)
	}
}

func TestCaptureRevealsExactlyHeldClusters(t *testing.T) {
	d := setup(t, 120, 10, 3)
	s := NewProtocolScheme(d)
	victim := 30
	revealed := s.RevealedClusters([]int{victim})
	sn := d.Sensors[victim]
	cid, _ := sn.Cluster()
	if !revealed[cid] {
		t.Fatal("own cluster not revealed")
	}
	for _, nc := range sn.NeighborClusters() {
		if !revealed[nc] {
			t.Fatalf("held neighbor cluster %d not revealed", nc)
		}
	}
	if len(revealed) != sn.ClusterKeyCount() {
		t.Fatalf("revealed %d clusters, node held %d keys", len(revealed), sn.ClusterKeyCount())
	}
}

func TestLocalityBeatsBaselines(t *testing.T) {
	// The paper's central comparison, stated in its own terms: "key
	// material from one part of the network cannot be used to disrupt
	// communications to some other part of it." So (a) the global key
	// collapses totally, (b) random predistribution compromises links
	// arbitrarily far from the captures, and (c) the localized protocol
	// compromises NOTHING beyond the captures' three-hop key horizon.
	d := setup(t, 1000, 12, 5)
	ours := NewProtocolScheme(d)
	gk := globalkey.New(d.Graph)
	// Classic EG parameters (m^2/P ~ 1, one shared key per link).
	rk, err := randomkp.New(d.Graph, randomkp.Params{PoolSize: 10000, RingSize: 100, Q: 1}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	captured := xrand.New(7).Sample(d.Graph.N(), 25)

	if f := gk.Capture(captured).Fraction(); f != 1.0 {
		t.Fatalf("global key fraction %v, want 1.0", f)
	}
	const horizon = 4
	remoteOurs := ours.CaptureBeyond(captured, horizon)
	remoteRK := rk.CaptureBeyond(captured, horizon)
	if remoteOurs.CompromisedLinks != 0 {
		t.Fatalf("localized protocol compromised %d remote links", remoteOurs.CompromisedLinks)
	}
	if remoteRK.CompromisedLinks == 0 {
		t.Fatal("random KP compromised no remote links; parameters degenerate")
	}
	if f := ours.Capture(captured).Fraction(); f >= 1.0 {
		t.Fatalf("localized full fraction %v", f)
	}
}

func TestCompromiseGrowsSublinearlyWithDistance(t *testing.T) {
	// Capturing nodes in one corner must not compromise links whose
	// sender cluster is far away: verify zero compromise outside the
	// captured nodes' 2-hop key horizon.
	d := setup(t, 200, 12, 9)
	s := NewProtocolScheme(d)
	captured := []int{10}
	revealed := s.RevealedClusters(captured)
	// Every revealed cluster must be the victim's own or a bordering one.
	sn := d.Sensors[10]
	legit := map[uint32]bool{}
	if cid, ok := sn.Cluster(); ok {
		legit[cid] = true
	}
	for _, nc := range sn.NeighborClusters() {
		legit[nc] = true
	}
	for cid := range revealed {
		if !legit[cid] {
			t.Fatalf("capture revealed remote cluster %d", cid)
		}
	}
}

func TestClonePlacementConfined(t *testing.T) {
	// Locality is absolute: a captured node's keys work in a
	// fixed-size geographic neighborhood, so the usable FRACTION of the
	// field must shrink as the network (at constant density) grows.
	fracAt := func(n int, seed uint64) float64 {
		d := setup(t, n, 12, seed)
		s := NewProtocolScheme(d)
		rep := s.ClonePlacement([]int{n / 3})
		if rep.UsablePositions == 0 {
			t.Fatal("clone unusable even at home")
		}
		return rep.Fraction()
	}
	small := fracAt(250, 11)
	large := fracAt(1000, 12)
	if large >= small {
		t.Fatalf("clone reach fraction did not shrink with size: %v -> %v", small, large)
	}
	if large > 0.15 {
		t.Fatalf("clone usable at %v of a 1000-node field", large)
	}
}

func TestClonePlacementGrowsWithCaptures(t *testing.T) {
	d := setup(t, 250, 12, 13)
	s := NewProtocolScheme(d)
	rng := xrand.New(14)
	f1 := s.ClonePlacement(rng.Sample(250, 2)).Fraction()
	f2 := s.ClonePlacement(rng.Sample(250, 30)).Fraction()
	if f2 <= f1 {
		t.Fatalf("clone reach did not grow with captures: %v vs %v", f1, f2)
	}
}

func TestCompromiseNodesSkipsBS(t *testing.T) {
	d := setup(t, 60, 10, 15)
	CompromiseNodes(d, []int{d.BSIndex, 5})
	if d.BS().Malice.DropData {
		t.Fatal("base station flagged as dropper")
	}
	if !d.Sensors[5].Malice.DropData {
		t.Fatal("node 5 not flagged")
	}
}

func TestCaptureEverythingCompromisesEverything(t *testing.T) {
	d := setup(t, 80, 10, 17)
	s := NewProtocolScheme(d)
	// Capture all but a handful of nodes: the remainder's clusters are
	// certainly revealed through shared membership.
	var captured []int
	for i := 5; i < 80; i++ {
		captured = append(captured, i)
	}
	rep := s.Capture(captured)
	if rep.TotalLinks > 0 && rep.Fraction() < 0.9 {
		t.Fatalf("near-total capture compromised only %v", rep.Fraction())
	}
}

// TestSybilIdentityForgeryFails is the paper's Sybil argument (Section
// VI): "Since every node shares a unique symmetric key with the trusted
// base station, a single node cannot present multiple identities." A
// compromised node that claims another origin in its Step-1 envelope
// fails the base station's key check.
func TestSybilIdentityForgeryFails(t *testing.T) {
	d := setup(t, 80, 12, 19)
	// The adversary fully controls node `mole` (captured, keys known)
	// and tries to impersonate node `victim` toward the base station.
	var mole int
	for _, nb := range d.Graph.Neighbors(d.BSIndex) {
		mole = int(nb)
		break
	}
	victim := uint32(61)
	ms := d.Sensors[mole]
	cid, _ := ms.Cluster()
	kc, _ := ms.KeyStore().KeyFor(cid)
	ki := ms.KeyStore().NodeKey // the mole's own Ki — NOT the victim's

	inner := &wire.Inner{Src: victim, Counter: 1, Encrypted: true,
		Sealed: crypt.Seal(ki, 1, core.InnerAAD(victim), []byte("forged-as-victim"))}
	dd := &wire.Data{Tau: 0, SrcCID: cid, Origin: victim, Seq: 424242, Hop: 5, Inner: inner.Marshal()}
	before := len(d.Deliveries())
	d.Eng.Schedule(d.Eng.Now()+time.Millisecond, func() {
		dd.Tau = int64(d.Eng.Now())
		nonce := uint64(mole)<<32 | 0xABCD
		sealed := crypt.Seal(kc, nonce, core.FrameAAD(wire.TData, cid), dd.Marshal())
		pkt, _ := (&wire.Frame{Type: wire.TData, CID: cid, Nonce: nonce, Payload: sealed}).Marshal()
		d.Eng.InjectAt(mole, node.ID(mole), pkt)
	})
	if _, err := d.Eng.RunUntilIdle(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(d.Deliveries()) != before {
		t.Fatal("base station accepted a Sybil identity")
	}
}
