// Package adversary implements the paper's threat model (Sections II and
// VI): an attacker without the ability to break cryptography who can
// eavesdrop on the broadcast medium, capture deployed nodes and read their
// memory (no tamper resistance), replicate captured nodes, and inject
// arbitrary traffic.
//
// It adapts the paper's protocol to the baseline.Scheme interface so the
// resilience experiments can compare all four schemes over identical
// topologies, and provides the replication-feasibility analysis behind the
// paper's claim that "key material from one part of the network cannot be
// used to disrupt communications to some other part of it."
package adversary

import (
	"repro/internal/baseline"
	"repro/internal/core"
)

// ProtocolScheme adapts a core.Deployment (after setup) to
// baseline.Scheme.
type ProtocolScheme struct {
	d *core.Deployment
}

// NewProtocolScheme wraps a deployment that has completed RunSetup.
func NewProtocolScheme(d *core.Deployment) *ProtocolScheme {
	return &ProtocolScheme{d: d}
}

// Name implements baseline.Scheme.
func (s *ProtocolScheme) Name() string { return "localized" }

// KeysPerNode implements baseline.Scheme: the node's cluster-key count
// (its node key Ki is excluded on all schemes' counts alike, since every
// scheme also has a per-node BS key or equivalent).
func (s *ProtocolScheme) KeysPerNode(u int) int {
	if sn := s.d.Sensors[u]; sn != nil {
		return sn.ClusterKeyCount()
	}
	return 0
}

// BroadcastTransmissions implements baseline.Scheme: the headline
// property — one transmission under the cluster key reaches every
// neighbor ("each node shares one pairwise key with all of its immediate
// neighbors, so only one transmission is necessary").
func (s *ProtocolScheme) BroadcastTransmissions(u int) int { return 1 }

// RevealedClusters returns the set of cluster IDs whose keys the
// adversary learns by capturing the given nodes — each node's own cluster
// plus its stored neighbor clusters, exactly what node.KeyStore.Snapshot
// exposes.
func (s *ProtocolScheme) RevealedClusters(captured []int) map[uint32]bool {
	revealed := make(map[uint32]bool)
	for _, c := range captured {
		sn := s.d.Sensors[c]
		if sn == nil {
			continue
		}
		for cid := range sn.KeyStore().Snapshot().Clusters {
			revealed[cid] = true
		}
	}
	return revealed
}

// Capture implements baseline.Scheme. A directed link u->v between
// uncaptured nodes is compromised iff u's cluster key is among the
// revealed keys (broadcasts from u are sealed under it). Because revealed
// keys are exactly the captured nodes' own and adjacent clusters, the
// damage is geometrically confined — the paper's deterministic locality.
func (s *ProtocolScheme) Capture(captured []int) baseline.CompromiseReport {
	set := baseline.CaptureSet(captured)
	revealed := s.RevealedClusters(captured)
	g := s.d.Graph
	rep := baseline.CompromiseReport{}
	for u := 0; u < g.N(); u++ {
		if set[u] || s.d.Sensors[u] == nil {
			continue
		}
		cid, ok := s.d.Sensors[u].Cluster()
		if !ok {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if set[int(v)] || s.d.Sensors[v] == nil {
				continue
			}
			rep.TotalLinks++
			if revealed[cid] {
				rep.CompromisedLinks++
			}
		}
	}
	return rep
}

// CaptureBeyond is Capture restricted to links whose sender is at least
// minHops away from every captured node. Under the localized protocol the
// compromised count here is provably zero for minHops >= 4: a revealed
// key belongs to a cluster with a member adjacent to some captured node x,
// and every member of that cluster is within two further hops (member ->
// head -> member), so compromised senders sit within three hops of x.
func (s *ProtocolScheme) CaptureBeyond(captured []int, minHops int) baseline.CompromiseReport {
	set := baseline.CaptureSet(captured)
	dist := baseline.HopsFromSet(s.d.Graph, captured)
	revealed := s.RevealedClusters(captured)
	g := s.d.Graph
	rep := baseline.CompromiseReport{}
	for u := 0; u < g.N(); u++ {
		if set[u] || s.d.Sensors[u] == nil {
			continue
		}
		if dist[u] != -1 && dist[u] < minHops {
			continue
		}
		cid, ok := s.d.Sensors[u].Cluster()
		if !ok {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if set[int(v)] || s.d.Sensors[v] == nil {
				continue
			}
			rep.TotalLinks++
			if revealed[cid] {
				rep.CompromisedLinks++
			}
		}
	}
	return rep
}

// CloneReport quantifies node replication feasibility (Section II,
// "Resilience to Node Replication", and Section VI, "Sybil attacks").
type CloneReport struct {
	// UsablePositions is the number of radio positions at which a clone
	// carrying the captured key material could authenticate to at least
	// one neighbor.
	UsablePositions int
	// TotalPositions is the number of candidate positions evaluated
	// (every uncaptured node's position).
	TotalPositions int
}

// Fraction returns UsablePositions / TotalPositions.
func (r CloneReport) Fraction() float64 {
	if r.TotalPositions == 0 {
		return 0
	}
	return float64(r.UsablePositions) / float64(r.TotalPositions)
}

// ClonePlacement evaluates where a clone of the captured nodes could
// participate: a position works iff some radio neighbor there belongs to
// a cluster whose key the adversary holds. Under the paper's protocol
// this is only the captured nodes' own neighborhoods; under a global key
// it would be everywhere.
func (s *ProtocolScheme) ClonePlacement(captured []int) CloneReport {
	set := baseline.CaptureSet(captured)
	revealed := s.RevealedClusters(captured)
	g := s.d.Graph
	rep := CloneReport{}
	for pos := 0; pos < g.N(); pos++ {
		if set[pos] {
			continue
		}
		rep.TotalPositions++
		for _, nb := range g.Neighbors(pos) {
			sn := s.d.Sensors[nb]
			if sn == nil || set[int(nb)] {
				continue
			}
			if cid, ok := sn.Cluster(); ok && revealed[cid] {
				rep.UsablePositions++
				break
			}
		}
	}
	return rep
}

// CompromiseNodes flips the listed (non-BS) nodes to selective-forwarding
// attackers: they keep authenticating traffic but drop everything they
// should relay.
func CompromiseNodes(d *core.Deployment, nodes []int) {
	for _, i := range nodes {
		if i == d.BSIndex || d.Sensors[i] == nil {
			continue
		}
		d.Sensors[i].Malice.DropData = true
	}
}
