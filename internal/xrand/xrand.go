// Package xrand provides deterministic, splittable pseudo-random number
// streams for reproducible simulation.
//
// Every experiment in this repository is driven by a single 64-bit seed.
// From that seed the simulator derives one independent stream per node (and
// per subsystem) with Split, so adding instrumentation or reordering
// unrelated draws never perturbs other nodes' randomness. The generator is
// xoshiro256**, seeded through SplitMix64, which is the standard pairing for
// simulation workloads: fast, equidistributed, and passes BigCrush.
//
// xrand is not cryptographically secure and must never be used for key
// material; protocol keys come from internal/crypt, which uses real
// primitives. xrand only drives the randomized parts of the protocol model
// (deployment positions, clusterhead election delays, loss processes).
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine its own stream via Split.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving child stream seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Two generators
// created with the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := new(RNG)
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream defined by seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro's all-zero state is absorbing; SplitMix64 cannot produce four
	// zero outputs from any seed, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent stream from this generator and the given
// label. Streams split with distinct labels are statistically independent
// of each other and of the parent; the parent's state is not advanced, so
// splitting is itself deterministic and order-independent.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the parent's identity (its seed-derived state) with the label
	// through SplitMix64 to obtain the child seed.
	sm := r.s[0] ^ rotl(r.s[2], 17) ^ (label * 0xd1342543de82ef95)
	return New(splitMix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// TrialSeed derives the root seed for one experiment trial as a pure
// function of (base seed, point index, trial index). Every experiment
// family derives its per-deployment seeds through this function, which is
// what makes trials independent of execution order: a trial's randomness
// depends only on these three integers, never on how many trials ran
// before it or on which worker picked it up. Each input is absorbed
// through a full SplitMix64 round with a distinct odd multiplier, so
// neighboring points, trials, and base seeds yield unrelated streams.
func TrialSeed(base uint64, point, trial int) uint64 {
	sm := base
	s := splitMix64(&sm)
	sm = s ^ (uint64(point)+1)*0xd1342543de82ef95
	s = splitMix64(&sm)
	sm = s ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	return splitMix64(&sm)
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// It uses Lemire's widening-multiply rejection method, which is unbiased.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection: multiply into a 128-bit product, reject the biased
	// low fringe.
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Exp returns an exponentially distributed duration value with the given
// mean (i.e. rate 1/mean), via inverse-CDF sampling. The paper's clustering
// phase draws each node's HELLO delay from an exponential distribution; the
// mean is the protocol's tunable. Exp panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exp with mean <= 0")
	}
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1-r.Float64()) * mean
}

// Norm returns a normally distributed value with mean mu and standard
// deviation sigma, using the Marsaglia polar method.
func (r *RNG) Norm(mu, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mu + sigma*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the given swap function,
// as in the standard library's rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly without replacement
// from [0, n). It panics if k > n or either is negative. The result is in
// selection order (itself uniformly random).
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("xrand: Sample with k > n or negative arguments")
	}
	// Partial Fisher-Yates over an index map; O(k) memory for small k.
	remap := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := remap[j]
		if !ok {
			vj = j
		}
		vi, ok := remap[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		remap[j] = vi
	}
	return out
}
