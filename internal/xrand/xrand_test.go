package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed: draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)

	// Same label must reproduce the same child stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatalf("Split(1) not deterministic at draw %d", i)
		}
	}
	// Different labels must give different streams.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children of labels 1,2 matched on %d/100 draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(123)
	_ = a.Split(456)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split advanced parent state at draw %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square style sanity check over 10 buckets.
	r := New(11)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const mean, n = 2.5, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	// Standard error of the mean is mean/sqrt(n) ~ 0.0056; allow 5 sigma.
	if math.Abs(got-mean) > 5*mean/math.Sqrt(n) {
		t.Fatalf("Exp sample mean %.4f, want %.4f", got, mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const mu, sigma, n = 3.0, 1.5, 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sigma)
		sum += v
		sum2 += v * v
	}
	m := sum / n
	sd := math.Sqrt(sum2/n - m*m)
	if math.Abs(m-mu) > 0.05 {
		t.Fatalf("Norm mean %.4f, want %.1f", m, mu)
	}
	if math.Abs(sd-sigma) > 0.05 {
		t.Fatalf("Norm stddev %.4f, want %.1f", sd, sigma)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bool(%.1f) frequency %.4f", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	r := New(37)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullRange(t *testing.T) {
	r := New(41)
	s := r.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing element %d: %v", i, s)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(43)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: %v", xs)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1.0)
	}
	_ = sink
}

func TestTrialSeedPureAndDistinct(t *testing.T) {
	// Pure: same inputs, same output.
	if TrialSeed(7, 2, 3) != TrialSeed(7, 2, 3) {
		t.Fatal("TrialSeed is not a pure function")
	}
	// Distinct across a dense neighborhood of (base, point, trial): any
	// collision here would alias two trials' entire random streams.
	seen := map[uint64][3]uint64{}
	for base := uint64(0); base < 8; base++ {
		for point := 0; point < 16; point++ {
			for trial := 0; trial < 64; trial++ {
				s := TrialSeed(base, point, trial)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d",
						base, point, trial, prev, s)
				}
				seen[s] = [3]uint64{base, uint64(point), uint64(trial)}
			}
		}
	}
}

func TestTrialSeedDecorrelatedStreams(t *testing.T) {
	// Adjacent trials must yield streams that disagree immediately; a weak
	// mix (e.g. seed = base + trial) would survive TrialSeed's purpose but
	// correlate the first draws.
	a := New(TrialSeed(1, 0, 0))
	b := New(TrialSeed(1, 0, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d/64 identical draws between adjacent trials", same)
	}
}
