package fusion_test

import (
	"fmt"

	"repro/internal/fusion"
)

// ExampleDedup shows duplicate suppression — thirty sensors reporting the
// same event produce one upstream report per forwarding path.
func ExampleDedup() {
	d := fusion.NewDedup(64)
	fmt.Println(d.Forward(1, 1, []byte("fire at sector 7")))
	fmt.Println(d.Forward(2, 1, []byte("fire at sector 7"))) // same event, other sensor
	fmt.Println(d.Forward(3, 1, []byte("all quiet")))
	// Output:
	// true
	// false
	// true
}

// ExampleChain composes policies: duplicates are dropped first, then a
// per-source budget throttles chatty sensors.
func ExampleChain() {
	policy := fusion.Chain{
		fusion.NewDedup(64),
		&fusion.RateLimiter{Budget: 2},
	}
	for seq := uint32(1); seq <= 4; seq++ {
		payload := fusion.EncodeValue(float64(seq))
		fmt.Println(policy.Forward(7, seq, payload))
	}
	// Output:
	// true
	// true
	// false
	// false
}

// ExampleMaxTracker shows in-network maximum aggregation: only new maxima
// travel toward the base station.
func ExampleMaxTracker() {
	m := &fusion.MaxTracker{}
	for _, v := range []float64{10, 7, 12, 12, 30} {
		fmt.Println(v, m.Forward(1, 0, fusion.EncodeValue(v)))
	}
	// Output:
	// 10 true
	// 7 false
	// 12 true
	// 12 false
	// 30 true
}
