// Package fusion provides in-network aggregation policies for the
// protocol's data-fusion mode. When Step-1 encryption is disabled,
// intermediate nodes can "peak at encrypted data using their cluster key
// and decide upon forwarding or discarding redundant information"
// (Section II); this package supplies the deciding logic as composable
// Suppressor policies pluggable into core.Sensor.Peek.
//
// The policies implement the standard in-network processing repertoire
// the paper motivates through directed diffusion [5]: duplicate
// suppression, change-delta filtering, extremum tracking, and per-source
// rate limiting.
package fusion

import (
	"encoding/binary"
	"math"

	"repro/internal/node"
)

// Suppressor decides whether a reading passing through a forwarder should
// continue toward the base station. Implementations are per-node state
// machines (one instance per forwarder) and are not safe for concurrent
// use — matching the single-threaded behavior contract.
type Suppressor interface {
	// Forward inspects one passing reading and reports whether to relay
	// it.
	Forward(origin node.ID, seq uint32, data []byte) bool
}

// Hook adapts a Suppressor to the core.Sensor.Peek signature.
func Hook(s Suppressor) func(origin node.ID, seq uint32, data []byte) bool {
	return s.Forward
}

// Chain combines suppressors; a reading is forwarded only if every policy
// agrees. Policies later in the chain are not consulted after a veto, so
// order cheap filters first.
type Chain []Suppressor

// Forward implements Suppressor.
func (c Chain) Forward(origin node.ID, seq uint32, data []byte) bool {
	for _, s := range c {
		if !s.Forward(origin, seq, data) {
			return false
		}
	}
	return true
}

// EncodeValue packs a numeric sensor reading into the 8-byte wire payload
// the numeric policies expect.
func EncodeValue(v float64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, math.Float64bits(v))
	return buf
}

// DecodeValue unpacks EncodeValue's payload; ok is false if the payload
// is not numeric.
func DecodeValue(data []byte) (v float64, ok bool) {
	if len(data) != 8 {
		return 0, false
	}
	v = math.Float64frombits(binary.BigEndian.Uint64(data))
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// Dedup suppresses payloads identical to one seen recently, bounded by an
// LRU of the given capacity. It is the aggregation the paper's
// "discarding redundant information" sentence describes: thirty sensors
// reporting the same event produce one upstream report per path.
type Dedup struct {
	capacity int
	seen     map[string]struct{}
	fifo     []string
	pos      int
}

// NewDedup returns a duplicate filter remembering up to capacity distinct
// payloads (minimum 1).
func NewDedup(capacity int) *Dedup {
	if capacity < 1 {
		capacity = 1
	}
	return &Dedup{capacity: capacity, seen: make(map[string]struct{}, capacity)}
}

// Forward implements Suppressor.
func (d *Dedup) Forward(_ node.ID, _ uint32, data []byte) bool {
	key := string(data)
	if _, dup := d.seen[key]; dup {
		return false
	}
	if len(d.fifo) < d.capacity {
		d.fifo = append(d.fifo, key)
	} else {
		delete(d.seen, d.fifo[d.pos])
		d.fifo[d.pos] = key
		d.pos = (d.pos + 1) % d.capacity
	}
	d.seen[key] = struct{}{}
	return true
}

// DeltaFilter forwards numeric readings only when they differ from the
// last forwarded value by at least Epsilon — the classic report-on-change
// policy. Non-numeric payloads pass through untouched.
type DeltaFilter struct {
	// Epsilon is the minimum absolute change worth reporting.
	Epsilon float64

	last    float64
	haveOne bool
}

// Forward implements Suppressor.
func (f *DeltaFilter) Forward(_ node.ID, _ uint32, data []byte) bool {
	v, ok := DecodeValue(data)
	if !ok {
		return true
	}
	if f.haveOne && math.Abs(v-f.last) < f.Epsilon {
		return false
	}
	f.last = v
	f.haveOne = true
	return true
}

// MaxTracker forwards a numeric reading only if it exceeds every value
// seen so far — in-network maximum aggregation (the base station receives
// a monotone series ending at the field's maximum). Non-numeric payloads
// pass through.
type MaxTracker struct {
	best    float64
	haveOne bool
}

// Forward implements Suppressor.
func (m *MaxTracker) Forward(_ node.ID, _ uint32, data []byte) bool {
	v, ok := DecodeValue(data)
	if !ok {
		return true
	}
	if m.haveOne && v <= m.best {
		return false
	}
	m.best = v
	m.haveOne = true
	return true
}

// RateLimiter forwards at most Budget readings per origin, then suppresses
// that origin until Reset is called (e.g. by an epoch timer) — a crude but
// effective defense against a babbling sensor.
type RateLimiter struct {
	// Budget is the per-origin forward allowance per epoch.
	Budget int

	counts map[node.ID]int
}

// Forward implements Suppressor.
func (r *RateLimiter) Forward(origin node.ID, _ uint32, _ []byte) bool {
	if r.counts == nil {
		r.counts = make(map[node.ID]int)
	}
	if r.counts[origin] >= r.Budget {
		return false
	}
	r.counts[origin]++
	return true
}

// Reset starts a new rate-limiting epoch.
func (r *RateLimiter) Reset() { r.counts = nil }
