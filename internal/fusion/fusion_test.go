package fusion

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestEncodeDecodeValue(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got, ok := DecodeValue(EncodeValue(v))
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeValue([]byte("short")); ok {
		t.Fatal("short payload decoded")
	}
	if _, ok := DecodeValue(EncodeValue(math.NaN())); ok {
		t.Fatal("NaN decoded as numeric")
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup(2)
	if !d.Forward(1, 1, []byte("a")) {
		t.Fatal("first a suppressed")
	}
	if d.Forward(2, 1, []byte("a")) {
		t.Fatal("duplicate a forwarded")
	}
	if !d.Forward(1, 2, []byte("b")) || !d.Forward(1, 3, []byte("c")) {
		t.Fatal("fresh payloads suppressed")
	}
	// Capacity 2: "a" has been evicted by now and flows again.
	if !d.Forward(1, 4, []byte("a")) {
		t.Fatal("evicted payload still suppressed")
	}
}

func TestDedupMinCapacity(t *testing.T) {
	d := NewDedup(0) // clamped to 1
	if !d.Forward(1, 1, []byte("x")) || d.Forward(1, 2, []byte("x")) {
		t.Fatal("capacity-1 dedup broken")
	}
	if !d.Forward(1, 3, []byte("y")) || !d.Forward(1, 4, []byte("x")) {
		t.Fatal("capacity-1 eviction broken")
	}
}

func TestDeltaFilter(t *testing.T) {
	f := &DeltaFilter{Epsilon: 0.5}
	if !f.Forward(1, 1, EncodeValue(20.0)) {
		t.Fatal("first value suppressed")
	}
	if f.Forward(1, 2, EncodeValue(20.3)) {
		t.Fatal("sub-epsilon change forwarded")
	}
	if !f.Forward(1, 3, EncodeValue(20.6)) {
		t.Fatal("super-epsilon change suppressed")
	}
	// Reference point moved to 20.6.
	if f.Forward(1, 4, EncodeValue(20.4)) {
		t.Fatal("change relative to stale reference")
	}
	if !f.Forward(1, 5, []byte("non-numeric")) {
		t.Fatal("non-numeric payload suppressed")
	}
}

func TestMaxTracker(t *testing.T) {
	m := &MaxTracker{}
	seq := []struct {
		v    float64
		want bool
	}{{10, true}, {5, false}, {10, false}, {11, true}, {11, false}, {30, true}}
	for i, c := range seq {
		if got := m.Forward(1, uint32(i), EncodeValue(c.v)); got != c.want {
			t.Fatalf("step %d (v=%v): forward=%v, want %v", i, c.v, got, c.want)
		}
	}
}

func TestRateLimiter(t *testing.T) {
	r := &RateLimiter{Budget: 2}
	for i := 0; i < 2; i++ {
		if !r.Forward(7, uint32(i), nil) {
			t.Fatalf("within-budget forward %d suppressed", i)
		}
	}
	if r.Forward(7, 2, nil) {
		t.Fatal("over-budget forward allowed")
	}
	if !r.Forward(8, 0, nil) {
		t.Fatal("different origin throttled")
	}
	r.Reset()
	if !r.Forward(7, 3, nil) {
		t.Fatal("budget not restored by Reset")
	}
}

func TestChainVetoAndOrder(t *testing.T) {
	d := NewDedup(8)
	rl := &RateLimiter{Budget: 1}
	c := Chain{d, rl}
	if !c.Forward(1, 1, []byte("a")) {
		t.Fatal("chain suppressed a fresh reading")
	}
	// Origin 2's duplicate is vetoed by dedup BEFORE the rate limiter
	// sees it, so origin 2's budget must remain unspent.
	if c.Forward(2, 2, []byte("a")) {
		t.Fatal("chain forwarded a duplicate")
	}
	if !c.Forward(2, 3, []byte("b")) {
		t.Fatal("rate limiter was charged by a vetoed reading")
	}
}

// TestFusionEndToEnd runs the MaxTracker policy inside a real network:
// readings rise and fall; the base station receives a strictly increasing
// series.
func TestFusionEndToEnd(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.DisableStep1 = true
	d, err := core.Deploy(core.DeployOptions{N: 80, Density: 12, Seed: 303, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunSetup(); err != nil {
		t.Fatal(err)
	}
	for i, s := range d.Sensors {
		if i == d.BSIndex {
			continue
		}
		s.Peek = Hook(&MaxTracker{})
	}
	// One distant source reports a rising-falling-rising series.
	src := -1
	for i := range d.Sensors {
		if i != d.BSIndex && !d.Graph.Adjacent(i, d.BSIndex) {
			src = i
			break
		}
	}
	if src < 0 {
		t.Skip("all nodes adjacent to BS")
	}
	values := []float64{5, 9, 3, 9, 12, 6, 20}
	base := d.Eng.Now()
	for k, v := range values {
		d.SendReading(src, base+time.Duration(k+1)*50*time.Millisecond, EncodeValue(v))
	}
	if _, err := d.Eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, del := range d.Deliveries() {
		v, ok := DecodeValue(del.Data)
		if !ok {
			t.Fatalf("non-numeric delivery %q", del.Data)
		}
		got = append(got, v)
	}
	if len(got) == 0 || len(got) >= len(values) {
		t.Fatalf("deliveries %v: suppression absent or total", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("series not strictly increasing: %v", got)
		}
	}
	if got[len(got)-1] != 20 {
		t.Fatalf("maximum 20 never arrived: %v", got)
	}
}
