// Package wire defines the binary message format every protocol packet uses
// on the (simulated) radio, and codecs for each message body.
//
// Layout discipline: a radio packet is one Frame — a type tag, a cluster-ID
// key selector, a seal nonce, and an opaque payload. The payload is either a
// crypt.Seal output (most messages) or a plaintext body (join requests,
// which by construction happen before any key is shared). Body structs
// marshal with fixed-width big-endian integers and length-prefixed byte
// strings, so sizes are predictable and the energy model can charge per
// transmitted byte.
//
// The CID field plays the role the paper assigns it in Step 2: "Since the
// nodes that will receive that message don't know the sender and therefore
// the key that the message was encrypted with, the cluster ID is included in
// c2. This way intermediate sensors will use the right key in their set S to
// authenticate the message." It is authenticated as the seal's associated
// data but cannot be encrypted.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crypt"
)

// Type identifies a protocol message.
type Type byte

// Message types. Values are stable wire constants.
const (
	THello      Type = 1  // clusterhead announcement, sealed under Km (Section IV-B.1)
	TLinkAdvert Type = 2  // cluster-key advert, sealed under Km (Section IV-B.2)
	TData       Type = 3  // hop-by-hop wrapped data, sealed under a cluster key (Section IV-C)
	TBeacon     Type = 4  // routing-gradient beacon, sealed under a cluster key
	TRevoke     Type = 5  // revocation command authenticated by the key chain (Section IV-D)
	TJoinReq    Type = 6  // new node hello, plaintext (Section IV-E)
	TJoinResp   Type = 7  // cluster-ID response, MAC'd under the cluster key (Section IV-E)
	TRefresh    Type = 8  // within-cluster key refresh, sealed under the old cluster key
	TKeepAlive  Type = 9  // clusterhead liveness heartbeat, sealed under the cluster key
	TRepair     Type = 10 // headship claim after a head crash, sealed under the cluster key
	TAuthority  Type = 11 // threshold-authority round message (internal/authority)
	TDataBatch  Type = 12 // batched data readings, sealed under a cluster key (docs/THROUGHPUT.md)
)

// String returns the message type mnemonic.
func (t Type) String() string {
	switch t {
	case THello:
		return "HELLO"
	case TLinkAdvert:
		return "LINK-ADVERT"
	case TData:
		return "DATA"
	case TBeacon:
		return "BEACON"
	case TRevoke:
		return "REVOKE"
	case TJoinReq:
		return "JOIN-REQ"
	case TJoinResp:
		return "JOIN-RESP"
	case TRefresh:
		return "REFRESH"
	case TKeepAlive:
		return "KEEPALIVE"
	case TRepair:
		return "REPAIR"
	case TAuthority:
		return "AUTHORITY"
	case TDataBatch:
		return "DATA-BATCH"
	default:
		return fmt.Sprintf("TYPE(%d)", byte(t))
	}
}

// Frame is the outermost packet structure.
type Frame struct {
	Type Type
	// CID selects the key the payload is sealed under (the sender's
	// cluster ID for TData/TBeacon/TRefresh; unused otherwise). It is
	// bound into the seal as associated data.
	CID uint32
	// Nonce is the seal nonce. Senders construct it as
	// (senderID << 32) | perSenderCounter so no two packets ever reuse a
	// (key, nonce) pair even under keys shared by a whole cluster.
	Nonce uint64
	// Payload is the sealed (or, for TJoinReq, plaintext) body.
	Payload []byte
}

const frameHeader = 1 + 4 + 8 + 2 // type, cid, nonce, payload length

// ErrTruncated is returned when a packet is shorter than its encoding
// requires.
var ErrTruncated = errors.New("wire: truncated packet")

// ErrBadType is returned when a frame's type tag is unknown.
var ErrBadType = errors.New("wire: unknown message type")

// MaxPayload is the largest payload length a frame can carry.
const MaxPayload = 1<<16 - 1

// Marshal encodes the frame.
func (f *Frame) Marshal() ([]byte, error) {
	return f.AppendMarshal(nil)
}

// AppendMarshal appends the frame's encoding to dst and returns the
// extended slice — the same bytes Marshal produces, but reusable scratch
// with spare capacity makes the call allocation-free.
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("wire: payload of %d bytes exceeds maximum %d", len(f.Payload), MaxPayload)
	}
	dst = append(dst, byte(f.Type))
	dst = binary.BigEndian.AppendUint32(dst, f.CID)
	dst = binary.BigEndian.AppendUint64(dst, f.Nonce)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Payload)))
	return append(dst, f.Payload...), nil
}

// ParseFrame decodes a frame from a packet. The returned frame's payload
// aliases pkt.
func ParseFrame(pkt []byte) (*Frame, error) {
	f := new(Frame)
	if err := ParseFrameInto(f, pkt); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseFrameInto decodes a frame from a packet into a caller-provided
// (typically stack-allocated) Frame, avoiding ParseFrame's per-packet
// allocation. f.Payload aliases pkt; it is only as long-lived as the
// packet buffer, which on the simulator's receive path is recycled when
// Receive returns.
func ParseFrameInto(f *Frame, pkt []byte) error {
	if len(pkt) < frameHeader {
		return ErrTruncated
	}
	f.Type = Type(pkt[0])
	f.CID = binary.BigEndian.Uint32(pkt[1:5])
	f.Nonce = binary.BigEndian.Uint64(pkt[5:13])
	f.Payload = nil
	if f.Type < THello || f.Type > TDataBatch {
		return ErrBadType
	}
	n := int(binary.BigEndian.Uint16(pkt[13:15]))
	if len(pkt) < frameHeader+n {
		return ErrTruncated
	}
	// A radio packet is exactly one frame: trailing bytes beyond the
	// declared payload length are rejected so parse-then-marshal is the
	// identity on every accepted packet (found by FuzzParseFrame).
	if len(pkt) != frameHeader+n {
		return fmt.Errorf("wire: %d trailing bytes after frame payload", len(pkt)-frameHeader-n)
	}
	f.Payload = pkt[frameHeader : frameHeader+n]
	return nil
}

// writer appends big-endian fields to a buffer.
type writer struct {
	buf []byte
}

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}
func (w *writer) u32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}
func (w *writer) u64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}
func (w *writer) i64(v int64) { w.u64(uint64(v)) }
func (w *writer) key(k crypt.Key) {
	w.buf = append(w.buf, k[:]...)
}
func (w *writer) bytes(b []byte) {
	if len(b) > MaxPayload {
		panic("wire: byte string too long")
	}
	w.u16(uint16(len(b)))
	w.buf = append(w.buf, b...)
}

// reader consumes big-endian fields from a buffer with a sticky error.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) key() crypt.Key {
	b := r.take(crypt.KeySize)
	if b == nil {
		return crypt.Key{}
	}
	return crypt.KeyFromBytes(b)
}
func (r *reader) bytes() []byte {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return nil
	}
	// Copy so decoded messages never alias radio buffers.
	return append([]byte(nil), b...)
}

// done returns an error if decoding failed or left trailing bytes.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf))
	}
	return nil
}
