package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/crypt"
)

func TestFrameRoundtrip(t *testing.T) {
	f := func(typ byte, cid uint32, nonce uint64, payload []byte) bool {
		ty := Type(typ%8) + 1
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{Type: ty, CID: cid, Nonce: nonce, Payload: payload}
		pkt, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := ParseFrame(pkt)
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.CID == in.CID && out.Nonce == in.Nonce &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(nil); err != ErrTruncated {
		t.Fatalf("nil packet: %v", err)
	}
	if _, err := ParseFrame(make([]byte, frameHeader-1)); err != ErrTruncated {
		t.Fatalf("short packet: %v", err)
	}
	// Unknown type.
	pkt, err := (&Frame{Type: THello, Payload: []byte("x")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt[0] = 0
	if _, err := ParseFrame(pkt); err != ErrBadType {
		t.Fatalf("type 0: %v", err)
	}
	pkt[0] = 200
	if _, err := ParseFrame(pkt); err != ErrBadType {
		t.Fatalf("type 200: %v", err)
	}
	// Declared payload longer than packet.
	pkt[0] = byte(THello)
	pkt[13], pkt[14] = 0xff, 0xff
	if _, err := ParseFrame(pkt); err != ErrTruncated {
		t.Fatalf("overlong declared payload: %v", err)
	}
}

func TestMarshalRejectsHugePayload(t *testing.T) {
	f := &Frame{Type: TData, Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		THello: "HELLO", TLinkAdvert: "LINK-ADVERT", TData: "DATA",
		TBeacon: "BEACON", TRevoke: "REVOKE", TJoinReq: "JOIN-REQ",
		TJoinResp: "JOIN-RESP", TRefresh: "REFRESH", TDataBatch: "DATA-BATCH",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "TYPE(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func key16(b byte) crypt.Key {
	var k crypt.Key
	for i := range k {
		k[i] = b ^ byte(i*3)
	}
	return k
}

func TestHelloRoundtrip(t *testing.T) {
	in := &Hello{HeadID: 1234, ClusterKey: key16(7)}
	out, err := UnmarshalHello(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestLinkAdvertRoundtrip(t *testing.T) {
	in := &LinkAdvert{CID: 999, ClusterKey: key16(9)}
	out, err := UnmarshalLinkAdvert(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestInnerRoundtrip(t *testing.T) {
	f := func(src uint32, ctr uint64, enc bool, sealed []byte) bool {
		if len(sealed) > 1024 {
			sealed = sealed[:1024]
		}
		in := &Inner{Src: src, Counter: ctr, Encrypted: enc, Sealed: sealed}
		out, err := UnmarshalInner(in.Marshal())
		if err != nil {
			return false
		}
		return out.Src == in.Src && out.Counter == in.Counter &&
			out.Encrypted == in.Encrypted && bytes.Equal(out.Sealed, in.Sealed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerRejectsBadFlag(t *testing.T) {
	in := &Inner{Src: 1, Counter: 2, Encrypted: true, Sealed: []byte("abc")}
	b := in.Marshal()
	b[12] = 2 // the Encrypted flag byte
	if _, err := UnmarshalInner(b); err == nil {
		t.Fatal("bad flag byte accepted")
	}
}

func TestDataRoundtrip(t *testing.T) {
	f := func(tau int64, cid, origin, seq uint32, hop uint16, inner []byte) bool {
		if len(inner) > 1024 {
			inner = inner[:1024]
		}
		in := &Data{Tau: tau, SrcCID: cid, Origin: origin, Seq: seq, Hop: hop, Inner: inner}
		out, err := UnmarshalData(in.Marshal())
		if err != nil {
			return false
		}
		return out.Tau == in.Tau && out.SrcCID == in.SrcCID && out.Origin == in.Origin &&
			out.Seq == in.Seq && out.Hop == in.Hop && bytes.Equal(out.Inner, in.Inner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBeaconRoundtrip(t *testing.T) {
	in := &Beacon{Round: 3, Hop: 17}
	out, err := UnmarshalBeacon(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestRevokeRoundtrip(t *testing.T) {
	cases := []*Revoke{
		{Index: 1, ChainKey: key16(3), CIDs: nil},
		{Index: 2, ChainKey: key16(4), CIDs: []uint32{10}},
		{Index: 77, ChainKey: key16(5), CIDs: []uint32{1, 2, 3, 4, 5, 1 << 30}},
	}
	for _, in := range cases {
		out, err := UnmarshalRevoke(in.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if out.Index != in.Index || !out.ChainKey.Equal(in.ChainKey) {
			t.Fatalf("roundtrip header: %+v != %+v", out, in)
		}
		if len(out.CIDs) != len(in.CIDs) {
			t.Fatalf("CIDs length %d != %d", len(out.CIDs), len(in.CIDs))
		}
		for i := range in.CIDs {
			if out.CIDs[i] != in.CIDs[i] {
				t.Fatalf("CIDs %v != %v", out.CIDs, in.CIDs)
			}
		}
	}
}

func TestJoinReqRoundtrip(t *testing.T) {
	in := &JoinReq{NodeID: 424242}
	out, err := UnmarshalJoinReq(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestJoinRespRoundtrip(t *testing.T) {
	in := &JoinResp{CID: 13}
	for i := range in.Tag {
		in.Tag[i] = byte(i * 7)
	}
	out, err := UnmarshalJoinResp(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestRefreshRoundtrip(t *testing.T) {
	in := &Refresh{CID: 5, Epoch: 9, NewKey: key16(11)}
	out, err := UnmarshalRefresh(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
}

func TestDataBatchRoundtrip(t *testing.T) {
	cases := []*DataBatch{
		{Tau: 1, SrcCID: 2, Hop: 3, Readings: nil},
		{Tau: -9, SrcCID: 7, Hop: 0, Readings: []BatchReading{{Origin: 1, Seq: 2, Inner: []byte("a")}}},
		{Tau: 5, SrcCID: 6, Hop: 9, Readings: []BatchReading{
			{Origin: 10, Seq: 100, Inner: []byte("reading-10")},
			{Origin: 11, Seq: 4294967295, Inner: nil},
			{Origin: 12, Seq: 0, Inner: []byte("reading-12")},
		}},
	}
	for _, in := range cases {
		out, err := UnmarshalDataBatch(in.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if out.Tau != in.Tau || out.SrcCID != in.SrcCID || out.Hop != in.Hop {
			t.Fatalf("roundtrip header: %+v != %+v", out, in)
		}
		if len(out.Readings) != len(in.Readings) {
			t.Fatalf("readings length %d != %d", len(out.Readings), len(in.Readings))
		}
		for i := range in.Readings {
			if out.Readings[i].Origin != in.Readings[i].Origin ||
				out.Readings[i].Seq != in.Readings[i].Seq ||
				!bytes.Equal(out.Readings[i].Inner, in.Readings[i].Inner) {
				t.Fatalf("reading %d: %+v != %+v", i, out.Readings[i], in.Readings[i])
			}
		}
	}
}

func TestDataBatchRejectsLyingCount(t *testing.T) {
	buf := (&DataBatch{Tau: 1, SrcCID: 2, Readings: []BatchReading{{Origin: 3, Seq: 4}}}).Marshal()
	// Inflate the declared tuple count (bytes 14..15, after Tau, SrcCID,
	// and Hop) past the actual payload.
	buf[14], buf[15] = 0xff, 0xff
	if _, err := UnmarshalDataBatch(buf); err == nil {
		t.Fatal("inflated tuple count accepted")
	}
}

// Every Unmarshal must reject truncation at any byte boundary and reject
// trailing garbage. Drive all codecs through one table.
func TestUnmarshalRejectsTruncationAndTrailing(t *testing.T) {
	full := map[string][]byte{
		"hello":      (&Hello{HeadID: 1, ClusterKey: key16(1)}).Marshal(),
		"linkadvert": (&LinkAdvert{CID: 2, ClusterKey: key16(2)}).Marshal(),
		"inner":      (&Inner{Src: 3, Counter: 4, Encrypted: true, Sealed: []byte("abcd")}).Marshal(),
		"data":       (&Data{Tau: 5, SrcCID: 6, Origin: 7, Seq: 8, Hop: 9, Inner: []byte("efgh")}).Marshal(),
		"beacon":     (&Beacon{Round: 1, Hop: 2}).Marshal(),
		"revoke":     (&Revoke{Index: 1, ChainKey: key16(3), CIDs: []uint32{4, 5}}).Marshal(),
		"joinreq":    (&JoinReq{NodeID: 6}).Marshal(),
		"joinresp":   (&JoinResp{CID: 7}).Marshal(),
		"refresh":    (&Refresh{CID: 8, Epoch: 9, NewKey: key16(4)}).Marshal(),
		"databatch": (&DataBatch{Tau: 5, SrcCID: 6, Hop: 7, Readings: []BatchReading{
			{Origin: 8, Seq: 9, Inner: []byte("ijkl")},
			{Origin: 10, Seq: 11, Inner: []byte("mn")},
		}}).Marshal(),
	}
	decode := map[string]func([]byte) error{
		"hello":      func(b []byte) error { _, err := UnmarshalHello(b); return err },
		"linkadvert": func(b []byte) error { _, err := UnmarshalLinkAdvert(b); return err },
		"inner":      func(b []byte) error { _, err := UnmarshalInner(b); return err },
		"data":       func(b []byte) error { _, err := UnmarshalData(b); return err },
		"beacon":     func(b []byte) error { _, err := UnmarshalBeacon(b); return err },
		"revoke":     func(b []byte) error { _, err := UnmarshalRevoke(b); return err },
		"joinreq":    func(b []byte) error { _, err := UnmarshalJoinReq(b); return err },
		"joinresp":   func(b []byte) error { _, err := UnmarshalJoinResp(b); return err },
		"refresh":    func(b []byte) error { _, err := UnmarshalRefresh(b); return err },
		"databatch":  func(b []byte) error { _, err := UnmarshalDataBatch(b); return err },
	}
	for name, buf := range full {
		dec := decode[name]
		if err := dec(buf); err != nil {
			t.Fatalf("%s: full decode failed: %v", name, err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if err := dec(buf[:cut]); err == nil {
				t.Errorf("%s: truncation to %d bytes accepted", name, cut)
			}
		}
		if err := dec(append(append([]byte(nil), buf...), 0xAA)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

func TestDecodedBytesDoNotAliasInput(t *testing.T) {
	in := &Data{Inner: []byte("sensor")}
	buf := in.Marshal()
	out, err := UnmarshalData(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF // scribble over the radio buffer
	if !bytes.Equal(out.Inner, []byte("sensor")) {
		t.Fatal("decoded Inner aliases the input buffer")
	}
}

func BenchmarkDataMarshal(b *testing.B) {
	m := &Data{Tau: 1, SrcCID: 2, Origin: 3, Seq: 4, Hop: 5, Inner: make([]byte, 48)}
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}

func BenchmarkDataUnmarshal(b *testing.B) {
	buf := (&Data{Tau: 1, SrcCID: 2, Origin: 3, Seq: 4, Hop: 5, Inner: make([]byte, 48)}).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalData(buf); err != nil {
			b.Fatal(err)
		}
	}
}
