package wire

import "repro/internal/crypt"

// Hello is the plaintext body of a clusterhead announcement (Section
// IV-B.1). The whole body is sealed under the master key Km before
// transmission: E_Km(ID_i | Kc_i | MAC_Km(ID_i | Kc_i)) in the paper's
// notation (the MAC is supplied by the seal).
type Hello struct {
	HeadID     uint32
	ClusterKey crypt.Key
}

// Marshal encodes the body.
func (m *Hello) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Hello) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.HeadID)
	w.key(m.ClusterKey)
	return w.buf
}

// UnmarshalHello decodes a Hello body.
func UnmarshalHello(b []byte) (*Hello, error) {
	r := reader{buf: b}
	m := &Hello{HeadID: r.u32(), ClusterKey: r.key()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// LinkAdvert is the plaintext body of the secure-link-establishment
// broadcast (Section IV-B.2): every node re-advertises its cluster's
// (CID, Kc) under Km so neighbors in adjacent clusters can store the key.
type LinkAdvert struct {
	CID        uint32
	ClusterKey crypt.Key
}

// Marshal encodes the body.
func (m *LinkAdvert) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *LinkAdvert) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.CID)
	w.key(m.ClusterKey)
	return w.buf
}

// UnmarshalLinkAdvert decodes a LinkAdvert body.
func UnmarshalLinkAdvert(b []byte) (*LinkAdvert, error) {
	r := reader{buf: b}
	m := &LinkAdvert{CID: r.u32(), ClusterKey: r.key()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Inner is c1 of Section IV-C Step 1: the end-to-end protected sensor
// reading, decipherable only by the base station. Sealed is the crypt.Seal
// of the reading under the source's node key Ki with the shared counter as
// nonce; Src and Counter travel with it so the base station can select Ki
// and check its counter window. When Step 1 is disabled for data-fusion
// deployments, Sealed carries the plaintext reading and Counter is 0 (the
// paper: "if we are interested in data fusion processing then Step 1 should
// be omitted ... c1 ... is simply the data D").
type Inner struct {
	Src       uint32
	Counter   uint64
	Encrypted bool
	Sealed    []byte
}

// Marshal encodes the body.
func (m *Inner) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Inner) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.Src)
	w.u64(m.Counter)
	if m.Encrypted {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.bytes(m.Sealed)
	return w.buf
}

// UnmarshalInner decodes an Inner body.
func UnmarshalInner(b []byte) (*Inner, error) {
	r := reader{buf: b}
	m := &Inner{Src: r.u32(), Counter: r.u64()}
	switch r.u8() {
	case 0:
	case 1:
		m.Encrypted = true
	default:
		if r.err == nil {
			return nil, ErrBadType
		}
	}
	m.Sealed = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInnerInto decodes an Inner body into m without allocating:
// m.Sealed aliases b. The base station's delivery hot path uses it;
// callers that retain the envelope past the radio callback must copy
// Sealed (or use UnmarshalInner, which copies).
func UnmarshalInnerInto(m *Inner, b []byte) error {
	r := reader{buf: b}
	m.Src = r.u32()
	m.Counter = r.u64()
	m.Encrypted = false
	switch r.u8() {
	case 0:
	case 1:
		m.Encrypted = true
	default:
		if r.err == nil {
			return ErrBadType
		}
	}
	n := int(r.u16())
	m.Sealed = r.take(n)
	return r.done()
}

// Data is y2 of Section IV-C Step 2 before sealing: the hop-by-hop
// envelope. Tau is the paper's freshness timestamp τ; SrcCID is the
// sender's cluster ID, carried redundantly *inside* the encryption as the
// paper specifies (the outer frame's CID is authenticated-but-visible).
// Origin/Seq identify the end-to-end flow for duplicate suppression, and
// Hop carries the forwarder's gradient height for the routing substrate.
type Data struct {
	Tau    int64 // sender's clock at (re-)encryption time, ns of virtual time
	SrcCID uint32
	Origin uint32 // ID of the node whose reading this is
	Seq    uint32 // per-origin sequence number
	Hop    uint16 // forwarder's hop distance to the base station
	Inner  []byte // marshaled Inner (c1)
}

// Marshal encodes the body.
func (m *Data) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Data) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.i64(m.Tau)
	w.u32(m.SrcCID)
	w.u32(m.Origin)
	w.u32(m.Seq)
	w.u16(m.Hop)
	w.bytes(m.Inner)
	return w.buf
}

// UnmarshalData decodes a Data body.
func UnmarshalData(b []byte) (*Data, error) {
	r := reader{buf: b}
	m := &Data{
		Tau:    r.i64(),
		SrcCID: r.u32(),
		Origin: r.u32(),
		Seq:    r.u32(),
		Hop:    r.u16(),
	}
	m.Inner = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalDataInto decodes a Data body into m without allocating:
// m.Inner aliases b. The forwarding hot path uses it; callers that
// retain the envelope past the radio callback must copy Inner (or use
// UnmarshalData, which copies).
func UnmarshalDataInto(m *Data, b []byte) error {
	r := reader{buf: b}
	m.Tau = r.i64()
	m.SrcCID = r.u32()
	m.Origin = r.u32()
	m.Seq = r.u32()
	m.Hop = r.u16()
	n := int(r.u16())
	m.Inner = r.take(n)
	return r.done()
}

// Beacon is the routing-gradient announcement flooded from the base
// station after key setup. Hop is the sender's distance from the base
// station; receivers adopt Hop+1. Sealed hop-by-hop under cluster keys
// like any other traffic.
type Beacon struct {
	Round uint32 // beacon epoch, so stale gradients are replaced
	Hop   uint16
}

// Marshal encodes the body.
func (m *Beacon) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Beacon) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.Round)
	w.u16(m.Hop)
	return w.buf
}

// UnmarshalBeacon decodes a Beacon body.
func UnmarshalBeacon(b []byte) (*Beacon, error) {
	r := reader{buf: b}
	m := &Beacon{Round: r.u32(), Hop: r.u16()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Revoke is the base station's eviction command (Section IV-D). ChainKey
// is the next one-way-chain value K_l; Index its position (so verifiers
// know how far they may have to hash); CIDs lists the revoked clusters
// whose keys every node must delete. The command is flooded; each node
// verifies the chain key against its stored commitment before acting, so
// no other authentication is needed — exactly the paper's scheme.
type Revoke struct {
	Index    uint32
	ChainKey crypt.Key
	CIDs     []uint32
}

// Marshal encodes the body.
func (m *Revoke) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Revoke) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.Index)
	w.key(m.ChainKey)
	w.u16(uint16(len(m.CIDs)))
	for _, c := range m.CIDs {
		w.u32(c)
	}
	return w.buf
}

// UnmarshalRevoke decodes a Revoke body.
func UnmarshalRevoke(b []byte) (*Revoke, error) {
	r := reader{buf: b}
	m := &Revoke{Index: r.u32(), ChainKey: r.key()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		m.CIDs = append(m.CIDs, r.u32())
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// JoinReq is a late-deployed node's hello (Section IV-E): "Every new node
// transmits a hello message to its neighbors indicating its will to become
// a member of some existing cluster. The message contains the ID of the
// new node." It is necessarily plaintext — the new node shares no key with
// its neighbors yet; authentication happens on the response path.
type JoinReq struct {
	NodeID uint32
}

// Marshal encodes the body.
func (m *JoinReq) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *JoinReq) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.NodeID)
	return w.buf
}

// UnmarshalJoinReq decodes a JoinReq body.
func UnmarshalJoinReq(b []byte) (*JoinReq, error) {
	r := reader{buf: b}
	m := &JoinReq{NodeID: r.u32()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// JoinResp answers a JoinReq with "CID, MAC_Kc(CID)" (Section IV-E). The
// new node derives Kc = F(KMC, CID) and verifies the tag, defeating the
// impersonation attack the paper describes (an adversary advertising fake
// cluster IDs to poison the newcomer's key table). Epoch extends the paper:
// it counts completed key refreshes of the cluster, so a newcomer derives
// the *current* key by hash-forwarding F(KMC, CID) Epoch times; the tag is
// computed under the current key, so a wrong or lying epoch fails
// verification.
type JoinResp struct {
	CID   uint32
	Epoch uint32
	Tag   [crypt.MACSize]byte
}

// Marshal encodes the body.
func (m *JoinResp) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *JoinResp) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.CID)
	w.u32(m.Epoch)
	w.buf = append(w.buf, m.Tag[:]...)
	return w.buf
}

// UnmarshalJoinResp decodes a JoinResp body.
func UnmarshalJoinResp(b []byte) (*JoinResp, error) {
	r := reader{buf: b}
	m := &JoinResp{CID: r.u32(), Epoch: r.u32()}
	copy(m.Tag[:], r.take(crypt.MACSize))
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Refresh carries a new cluster key during within-cluster key refresh,
// sealed under the old cluster key (Section IV-C: "the current cluster key
// may be used by the nodes instead [of Km] ... The message will contain
// the new cluster key, created by a secure key generation algorithm
// embedded in each node"). Epoch orders refreshes so replays of old
// refresh messages are rejected.
type Refresh struct {
	CID    uint32
	Epoch  uint32
	NewKey crypt.Key
}

// Marshal encodes the body.
func (m *Refresh) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Refresh) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.CID)
	w.u32(m.Epoch)
	w.key(m.NewKey)
	return w.buf
}

// UnmarshalRefresh decodes a Refresh body.
func UnmarshalRefresh(b []byte) (*Refresh, error) {
	r := reader{buf: b}
	m := &Refresh{CID: r.u32(), Epoch: r.u32(), NewKey: r.key()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// KeepAlive is the clusterhead's periodic liveness heartbeat, sealed under
// the current cluster key. Members that stop hearing it conclude the head
// has died (energy depletion or capture-and-removal, the failure modes
// Sections IV-D/IV-E motivate maintenance with) and start a local repair
// election. HeadID lets members that missed a repair claim learn the
// current head lazily; Epoch pins the sender's refresh epoch so a member
// whose keys drifted notices immediately.
type KeepAlive struct {
	CID    uint32
	HeadID uint32
	Epoch  uint32
}

// Marshal encodes the body.
func (m *KeepAlive) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *KeepAlive) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.CID)
	w.u32(m.HeadID)
	w.u32(m.Epoch)
	return w.buf
}

// UnmarshalKeepAlive decodes a KeepAlive body.
func UnmarshalKeepAlive(b []byte) (*KeepAlive, error) {
	r := reader{buf: b}
	m := &KeepAlive{CID: r.u32(), HeadID: r.u32(), Epoch: r.u32()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Repair is a member's claim to headship of its own cluster after the
// current head crashed — the repair counterpart of HELLO, protected by the
// current cluster key instead of the long-erased Km (the paper's first
// refresh variant: the key setup step repeats "within clusters, i.e. not
// allow new clusters to be created"; the CID and cluster key survive, only
// the head role moves).
type Repair struct {
	CID     uint32
	NewHead uint32
	Epoch   uint32
}

// Marshal encodes the body.
func (m *Repair) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *Repair) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u32(m.CID)
	w.u32(m.NewHead)
	w.u32(m.Epoch)
	return w.buf
}

// UnmarshalRepair decodes a Repair body.
func UnmarshalRepair(b []byte) (*Repair, error) {
	r := reader{buf: b}
	m := &Repair{CID: r.u32(), NewHead: r.u32(), Epoch: r.u32()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// BatchReading is one (origin, seq, inner) tuple inside a DataBatch.
// Inner is a marshaled Inner (c1) exactly as a single TData would carry
// it: independently sealed under the origin's node key with the origin
// bound into its AAD, so batching amortizes the *outer* cluster-key seal
// without weakening per-origin authenticity.
type BatchReading struct {
	Origin uint32 // ID of the node whose reading this is
	Seq    uint32 // per-origin sequence number
	Inner  []byte // marshaled Inner (c1)
}

// DataBatch is the batched counterpart of Data (docs/THROUGHPUT.md): one
// hop-by-hop envelope carrying N readings under a single cluster-key
// seal. Tau and Hop play exactly their Data roles — the freshness
// timestamp τ and the forwarder's gradient height apply to the batch as
// a whole — while duplicate suppression and base-station attribution
// remain per tuple.
type DataBatch struct {
	Tau      int64  // sender's clock at (re-)encryption time, ns of virtual time
	SrcCID   uint32 // sender's cluster ID, carried redundantly inside the seal
	Hop      uint16 // forwarder's hop distance to the base station
	Readings []BatchReading
}

// Marshal encodes the body.
func (m *DataBatch) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *DataBatch) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.i64(m.Tau)
	w.u32(m.SrcCID)
	w.u16(m.Hop)
	w.u16(uint16(len(m.Readings)))
	for i := range m.Readings {
		w.u32(m.Readings[i].Origin)
		w.u32(m.Readings[i].Seq)
		w.bytes(m.Readings[i].Inner)
	}
	return w.buf
}

// UnmarshalDataBatch decodes a DataBatch body. Inner slices are copies,
// so the result outlives the input buffer.
func UnmarshalDataBatch(b []byte) (*DataBatch, error) {
	m := &DataBatch{}
	if err := UnmarshalDataBatchInto(m, b); err != nil {
		return nil, err
	}
	for i := range m.Readings {
		m.Readings[i].Inner = append([]byte(nil), m.Readings[i].Inner...)
	}
	return m, nil
}

// UnmarshalDataBatchInto decodes a DataBatch body into m, reusing
// m.Readings' capacity; with warmed scratch the call allocates nothing.
// Like UnmarshalDataInto, the Inner slices alias b, so they are only
// valid as long as the caller's buffer is — relays on the hot receive
// path copy what they keep (batch slab, retry queue, delivery arena).
func UnmarshalDataBatchInto(m *DataBatch, b []byte) error {
	r := reader{buf: b}
	m.Tau = r.i64()
	m.SrcCID = r.u32()
	m.Hop = r.u16()
	n := int(r.u16())
	m.Readings = m.Readings[:0]
	for i := 0; i < n && r.err == nil; i++ {
		origin := r.u32()
		seq := r.u32()
		inner := r.take(int(r.u16()))
		m.Readings = append(m.Readings, BatchReading{Origin: origin, Seq: seq, Inner: inner})
	}
	return r.done()
}
