package wire_test

import (
	"fmt"

	"repro/internal/crypt"
	"repro/internal/wire"
)

// ExampleFrame shows the packet structure every protocol message uses:
// an outer frame carrying the key-selecting cluster ID and seal nonce,
// with a crypt.Seal payload authenticated against both.
func ExampleFrame() {
	kc := crypt.KeyFromBytes([]byte("cluster 13's key"))
	body := (&wire.Data{
		Tau:    1_000_000,
		SrcCID: 13,
		Origin: 14,
		Seq:    1,
		Hop:    5,
		Inner:  []byte("c1"),
	}).Marshal()

	const nonce = (14 << 32) | 1 // sender ID || per-sender counter
	frame := &wire.Frame{
		Type:    wire.TData,
		CID:     13,
		Nonce:   nonce,
		Payload: crypt.Seal(kc, nonce, []byte{byte(wire.TData), 0, 0, 0, 13}, body),
	}
	pkt, _ := frame.Marshal()

	// A receiver holding cluster 13's key reverses the process.
	parsed, _ := wire.ParseFrame(pkt)
	pt, ok := crypt.Open(kc, parsed.Nonce,
		[]byte{byte(parsed.Type), 0, 0, 0, byte(parsed.CID)}, parsed.Payload)
	if !ok {
		fmt.Println("authentication failed")
		return
	}
	d, _ := wire.UnmarshalData(pt)
	fmt.Printf("%s from cluster %d: origin=%d seq=%d hop=%d inner=%q\n",
		parsed.Type, parsed.CID, d.Origin, d.Seq, d.Hop, d.Inner)
	// Output:
	// DATA from cluster 13: origin=14 seq=1 hop=5 inner="c1"
}
