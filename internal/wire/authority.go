package wire

// This file defines the wire bodies the threshold base-station authority
// (internal/authority) exchanges between its replicas. A TAuthority frame
// carries one AuthorityMsg envelope; the envelope's Body is a round-kind-
// specific payload the authority package encodes itself (group elements
// and field scalars as fixed-width byte strings), so the wire layer stays
// free of big-integer arithmetic. Only the envelope and the command being
// signed are wire contracts.

// Authority message kinds (values are stable wire constants). They name
// the rounds of the three authority protocols: the Pedersen/Gennaro DKG,
// the t-of-n command signing, and the reshare → ack → commit state
// machine.
const (
	AKHello            byte = 1  // static DH identity announcement
	AKDeal             byte = 2  // VSS commitments + pairwise-sealed shares
	AKComplaint        byte = 3  // complaint against a dealer
	AKJustify          byte = 4  // accused dealer reveals the disputed share
	AKExtract          byte = 5  // Feldman exponents of the dealt polynomial
	AKExtractComplaint byte = 6  // revealed share of a dealer whose exponents lie
	AKPropose          byte = 7  // command proposal opening a signing session
	AKPartial          byte = 8  // signer's nonce point + chain-key share
	AKSigShare         byte = 9  // signer's Schnorr response share
	AKCommand          byte = 10 // combined, threshold-signed command
	AKReshareInit      byte = 11 // resharing proposal (new threshold/committee)
	AKReshareDeal      byte = 12 // old holder's sub-share deal
	AKReshareAck       byte = 13 // new holder acknowledges a verified deal
	AKReshareCommit    byte = 14 // coordinator fixes the dealer set; install
	AKReshareAbort     byte = 15 // resharing failed; keep old shares
)

// AuthorityMsg is the envelope every TAuthority frame carries. From is
// the sender's committee index (1-based, the evaluation point of its
// share); Session distinguishes concurrent protocol instances so late
// or replayed rounds from a previous session are discarded.
type AuthorityMsg struct {
	Kind    byte
	Session uint32
	From    uint32
	Body    []byte
}

// Marshal encodes the body.
func (m *AuthorityMsg) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *AuthorityMsg) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u8(m.Kind)
	w.u32(m.Session)
	w.u32(m.From)
	w.bytes(m.Body)
	return w.buf
}

// UnmarshalAuthorityMsg decodes an AuthorityMsg body.
func UnmarshalAuthorityMsg(b []byte) (*AuthorityMsg, error) {
	r := reader{buf: b}
	m := &AuthorityMsg{Kind: r.u8(), Session: r.u32(), From: r.u32()}
	m.Body = r.bytes()
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Authority command kinds.
const (
	CmdEvict   byte = 1 // release K_Index and revoke CIDs (Section IV-D)
	CmdRefresh byte = 2 // release K_Index; sensors hash-forward all keys
)

// AuthorityCommand is the maintenance command a t-of-n quorum of
// authority replicas authorizes. It is both the message the threshold
// Schnorr signature covers (byte-for-byte, via Marshal) and the payload
// of AKPropose/AKCommand rounds. Index names the revocation-chain value
// whose release authenticates the command to sensors; CIDs lists the
// clusters to evict (empty for CmdRefresh).
type AuthorityCommand struct {
	Kind    byte
	Session uint32
	Index   uint32
	CIDs    []uint32
}

// Marshal encodes the body.
func (m *AuthorityCommand) Marshal() []byte { return m.AppendMarshal(nil) }

// AppendMarshal appends the encoded body to dst and returns the
// extended slice; reusable scratch with spare capacity makes the call
// allocation-free.
func (m *AuthorityCommand) AppendMarshal(dst []byte) []byte {
	w := writer{buf: dst}
	w.u8(m.Kind)
	w.u32(m.Session)
	w.u32(m.Index)
	w.u16(uint16(len(m.CIDs)))
	for _, c := range m.CIDs {
		w.u32(c)
	}
	return w.buf
}

// UnmarshalAuthorityCommand decodes an AuthorityCommand body.
func UnmarshalAuthorityCommand(b []byte) (*AuthorityCommand, error) {
	r := reader{buf: b}
	m := &AuthorityCommand{Kind: r.u8(), Session: r.u32(), Index: r.u32()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		m.CIDs = append(m.CIDs, r.u32())
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}
