package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the wire codecs (`go test -fuzz=FuzzParseFrame
// ./internal/wire`). They assert the same contract as the quick-check
// sweeps — decoding adversary-controlled bytes never panics — plus frame
// re-encode stability, but with coverage-guided input generation and a
// persistent corpus. CI runs each for a few seconds as a smoke pass.

// seedFrames returns one valid marshaled frame per frame type.
func seedFrames() [][]byte {
	var out [][]byte
	for typ := THello; typ <= TDataBatch; typ++ {
		f := &Frame{Type: typ, CID: 7, Nonce: 99, Payload: []byte{1, 2, 3, 4}}
		pkt, err := f.Marshal()
		if err != nil {
			panic(err)
		}
		out = append(out, pkt)
	}
	return out
}

// FuzzParseFrame drives the outer-frame decoder: any input must parse
// cleanly or error, and whatever parses must re-marshal to the identical
// bytes (relayed packets are MAC'd over the exact encoding).
func FuzzParseFrame(f *testing.F) {
	for _, pkt := range seedFrames() {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TData)})
	f.Fuzz(func(t *testing.T, b []byte) {
		parsed, err := ParseFrame(b)
		if err != nil {
			return
		}
		re, err := parsed.Marshal()
		if err != nil {
			t.Fatalf("parsed frame failed to re-marshal: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode not stable:\nin:  %x\nout: %x", b, re)
		}
	})
}

// FuzzUnmarshalBodies drives every sealed-body decoder off one input.
// The selector byte picks the codec so a single corpus covers them all.
func FuzzUnmarshalBodies(f *testing.F) {
	f.Add(byte(0), (&Hello{HeadID: 3}).Marshal())
	f.Add(byte(1), (&LinkAdvert{CID: 2}).Marshal())
	f.Add(byte(2), (&Inner{Src: 4, Counter: 9, Encrypted: true, Sealed: []byte{5}}).Marshal())
	f.Add(byte(3), (&Data{Tau: 1, SrcCID: 2, Origin: 3, Seq: 4, Inner: []byte{6}}).Marshal())
	f.Add(byte(4), (&Beacon{Round: 2, Hop: 1}).Marshal())
	f.Add(byte(5), (&Revoke{Index: 1, CIDs: []uint32{2, 3}}).Marshal())
	f.Add(byte(6), (&JoinReq{NodeID: 8}).Marshal())
	f.Add(byte(7), (&JoinResp{CID: 9}).Marshal())
	f.Add(byte(8), (&Refresh{CID: 1, Epoch: 2}).Marshal())
	f.Add(byte(9), (&KeepAlive{CID: 1, HeadID: 1, Epoch: 0}).Marshal())
	f.Add(byte(10), (&Repair{CID: 1, NewHead: 2, Epoch: 0}).Marshal())
	f.Add(byte(11), (&AuthorityMsg{Kind: AKDeal, Session: 1, From: 2, Body: []byte{7}}).Marshal())
	f.Add(byte(12), (&DataBatch{Tau: 1, SrcCID: 2, Readings: []BatchReading{{Origin: 3, Seq: 4, Inner: []byte{6}}}}).Marshal())
	f.Fuzz(func(t *testing.T, sel byte, b []byte) {
		switch sel % 13 {
		case 0:
			_, _ = UnmarshalHello(b)
		case 1:
			_, _ = UnmarshalLinkAdvert(b)
		case 2:
			_, _ = UnmarshalInner(b)
		case 3:
			_, _ = UnmarshalData(b)
		case 4:
			_, _ = UnmarshalBeacon(b)
		case 5:
			_, _ = UnmarshalRevoke(b)
		case 6:
			_, _ = UnmarshalJoinReq(b)
		case 7:
			_, _ = UnmarshalJoinResp(b)
		case 8:
			_, _ = UnmarshalRefresh(b)
		case 9:
			_, _ = UnmarshalKeepAlive(b)
		case 10:
			_, _ = UnmarshalRepair(b)
		case 11:
			_, _ = UnmarshalAuthorityMsg(b)
		case 12:
			_, _ = UnmarshalDataBatch(b)
		}
	})
}

// FuzzDataBatch drives the batched-data codec. Batches are the data
// plane's throughput envelope (docs/THROUGHPUT.md): beyond no-panic, the
// decoder must be a bijection on accepted inputs — whatever parses
// re-marshals to the identical bytes, because forwarders re-seal the
// exact encoding hop by hop and the outer MAC covers it.
func FuzzDataBatch(f *testing.F) {
	f.Add((&DataBatch{Tau: 7, SrcCID: 3, Hop: 2, Readings: []BatchReading{
		{Origin: 9, Seq: 1, Inner: []byte{1, 2, 3}},
		{Origin: 10, Seq: 2, Inner: nil},
	}}).Marshal())
	f.Add((&DataBatch{}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := UnmarshalDataBatch(b)
		if err != nil {
			return
		}
		re := m.Marshal()
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode not stable:\nin:  %x\nout: %x", b, re)
		}
	})
}

// FuzzAuthorityCommand drives the threshold-command codec. The command's
// exact encoding is what the authority quorum's Schnorr signature covers,
// so beyond no-panic the decoder must be a bijection on accepted inputs:
// whatever parses re-marshals to the identical bytes, or a forged
// re-encoding could carry a signature computed over different bytes.
func FuzzAuthorityCommand(f *testing.F) {
	f.Add((&AuthorityCommand{Kind: CmdEvict, Session: 1, Index: 3, CIDs: []uint32{2, 9}}).Marshal())
	f.Add((&AuthorityCommand{Kind: CmdRefresh, Session: 2, Index: 4}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		cmd, err := UnmarshalAuthorityCommand(b)
		if err != nil {
			return
		}
		re := cmd.Marshal()
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode not stable:\nin:  %x\nout: %x", b, re)
		}
	})
}
