package wire

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomBytes drives every decoder with arbitrary
// byte strings: decoding must either succeed or return an error — never
// panic, never loop. (Every packet on the simulated radio goes through
// these paths with adversary-controlled content.)
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	decoders := []struct {
		name string
		fn   func([]byte) error
	}{
		{"frame", func(b []byte) error { _, err := ParseFrame(b); return err }},
		{"hello", func(b []byte) error { _, err := UnmarshalHello(b); return err }},
		{"linkadvert", func(b []byte) error { _, err := UnmarshalLinkAdvert(b); return err }},
		{"inner", func(b []byte) error { _, err := UnmarshalInner(b); return err }},
		{"data", func(b []byte) error { _, err := UnmarshalData(b); return err }},
		{"beacon", func(b []byte) error { _, err := UnmarshalBeacon(b); return err }},
		{"revoke", func(b []byte) error { _, err := UnmarshalRevoke(b); return err }},
		{"joinreq", func(b []byte) error { _, err := UnmarshalJoinReq(b); return err }},
		{"joinresp", func(b []byte) error { _, err := UnmarshalJoinResp(b); return err }},
		{"refresh", func(b []byte) error { _, err := UnmarshalRefresh(b); return err }},
		{"keepalive", func(b []byte) error { _, err := UnmarshalKeepAlive(b); return err }},
		{"repair", func(b []byte) error { _, err := UnmarshalRepair(b); return err }},
	}
	for _, dec := range decoders {
		dec := dec
		f := func(b []byte) bool {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked on %x: %v", dec.name, b, r)
				}
			}()
			_ = dec.fn(b)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", dec.name, err)
		}
	}
}

// TestFrameReencodeStable checks that parse-then-marshal is the identity
// on valid frames (no normalization surprises that could break MAC
// verification of relayed packets).
func TestFrameReencodeStable(t *testing.T) {
	f := func(cid uint32, nonce uint64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		orig := &Frame{Type: TData, CID: cid, Nonce: nonce, Payload: payload}
		pkt, err := orig.Marshal()
		if err != nil {
			return false
		}
		parsed, err := ParseFrame(pkt)
		if err != nil {
			return false
		}
		re, err := parsed.Marshal()
		if err != nil {
			return false
		}
		if len(re) != len(pkt) {
			return false
		}
		for i := range re {
			if re[i] != pkt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRevokeHugeCIDCountRejected: a forged Revoke claiming more CIDs than
// the payload carries must fail cleanly.
func TestRevokeHugeCIDCountRejected(t *testing.T) {
	valid := (&Revoke{Index: 1, ChainKey: [16]byte{1}, CIDs: []uint32{2}}).Marshal()
	// The CID count lives right after index(4) + key(16).
	forged := append([]byte(nil), valid...)
	forged[20] = 0xFF
	forged[21] = 0xFF
	if _, err := UnmarshalRevoke(forged); err == nil {
		t.Fatal("revoke with forged element count accepted")
	}
}
