package node

import (
	"sort"
	"testing"

	"repro/internal/crypt"
	"repro/internal/xrand"
)

func k(b byte) crypt.Key {
	var key crypt.Key
	for i := range key {
		key[i] = b + byte(i)
	}
	return key
}

func newStore() *KeyStore {
	return NewKeyStore(k(1), k(2), k(3), k(4), 2)
}

func TestKeyStoreInitialState(t *testing.T) {
	s := newStore()
	if s.InCluster {
		t.Fatal("fresh store already in a cluster")
	}
	if s.ClusterKeyCount() != 0 {
		t.Fatalf("ClusterKeyCount = %d", s.ClusterKeyCount())
	}
	if s.Master.IsZero() {
		t.Fatal("master key missing")
	}
	if s.Chain == nil {
		t.Fatal("chain verifier missing")
	}
}

func TestJoinAndLookup(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	if !s.InCluster || s.CID != 13 {
		t.Fatal("join not recorded")
	}
	got, ok := s.KeyFor(13)
	if !ok || !got.Equal(k(10)) {
		t.Fatal("own cluster key lookup failed")
	}
	if _, ok := s.KeyFor(99); ok {
		t.Fatal("unknown CID resolved")
	}
	if s.ClusterKeyCount() != 1 {
		t.Fatalf("ClusterKeyCount = %d", s.ClusterKeyCount())
	}
}

func TestNeighborKeys(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	s.AddNeighbor(9, k(11))
	s.AddNeighbor(19, k(12))
	s.AddNeighbor(13, k(99)) // own cluster: must be ignored
	if s.ClusterKeyCount() != 3 {
		t.Fatalf("ClusterKeyCount = %d, want 3", s.ClusterKeyCount())
	}
	if got, _ := s.KeyFor(13); !got.Equal(k(10)) {
		t.Fatal("own key overwritten by AddNeighbor")
	}
	if got, ok := s.KeyFor(9); !ok || !got.Equal(k(11)) {
		t.Fatal("neighbor key lookup failed")
	}
	if !s.HasNeighbor(19) || s.HasNeighbor(13) || s.HasNeighbor(5) {
		t.Fatal("HasNeighbor wrong")
	}
	cids := s.NeighborCIDs()
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	if len(cids) != 2 || cids[0] != 9 || cids[1] != 19 {
		t.Fatalf("NeighborCIDs = %v", cids)
	}
}

func TestJoinClusterRemovesNeighborEntry(t *testing.T) {
	// A node that learned a cluster's key as a neighbor and then joins it
	// (late-addition path) must not double-count that key.
	s := newStore()
	s.AddNeighbor(7, k(20))
	s.JoinCluster(7, k(20))
	if s.ClusterKeyCount() != 1 {
		t.Fatalf("ClusterKeyCount = %d, want 1", s.ClusterKeyCount())
	}
}

func TestDropCluster(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	s.AddNeighbor(9, k(11))
	if !s.DropCluster(9) {
		t.Fatal("DropCluster(9) reported nothing deleted")
	}
	if _, ok := s.KeyFor(9); ok {
		t.Fatal("dropped neighbor key still resolves")
	}
	if s.DropCluster(9) {
		t.Fatal("double drop reported deletion")
	}
	if !s.DropCluster(13) {
		t.Fatal("DropCluster(own) reported nothing deleted")
	}
	if s.InCluster {
		t.Fatal("still in cluster after own-cluster revocation")
	}
	if s.ClusterKeyCount() != 0 {
		t.Fatalf("ClusterKeyCount = %d", s.ClusterKeyCount())
	}
}

func TestReplaceKey(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	s.AddNeighbor(9, k(11))
	if !s.ReplaceKey(13, k(30)) {
		t.Fatal("ReplaceKey(own) failed")
	}
	if got, _ := s.KeyFor(13); !got.Equal(k(30)) {
		t.Fatal("own key not replaced")
	}
	if !s.ReplaceKey(9, k(31)) {
		t.Fatal("ReplaceKey(neighbor) failed")
	}
	if s.ReplaceKey(42, k(32)) {
		t.Fatal("ReplaceKey(unknown) succeeded")
	}
}

func TestHashForwardAll(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	s.AddNeighbor(9, k(11))
	s.HashForwardAll()
	wantOwn := crypt.HashForward(k(10))
	wantNb := crypt.HashForward(k(11))
	if got, _ := s.KeyFor(13); !got.Equal(wantOwn) {
		t.Fatal("own key not hashed forward")
	}
	if got, _ := s.KeyFor(9); !got.Equal(wantNb) {
		t.Fatal("neighbor key not hashed forward")
	}
	// Refreshing twice must compose.
	s.HashForwardAll()
	if got, _ := s.KeyFor(13); !got.Equal(crypt.HashForward(wantOwn)) {
		t.Fatal("second refresh wrong")
	}
}

func TestEraseMaster(t *testing.T) {
	s := newStore()
	if !s.EraseMaster() {
		t.Fatal("EraseMaster reported nothing erased")
	}
	if !s.Master.IsZero() {
		t.Fatal("master not zeroized")
	}
	if s.EraseMaster() {
		t.Fatal("double erase reported success")
	}
}

func TestEraseAddMaster(t *testing.T) {
	s := newStore()
	if s.EraseAddMaster() {
		t.Fatal("erasing absent KMC reported success")
	}
	s.AddMaster = k(40)
	if !s.EraseAddMaster() {
		t.Fatal("EraseAddMaster failed")
	}
	if !s.AddMaster.IsZero() {
		t.Fatal("KMC not zeroized")
	}
}

func TestSnapshotReflectsCaptureSemantics(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	s.AddNeighbor(9, k(11))
	s.EraseMaster()
	cm := s.Snapshot()
	if !cm.Master.IsZero() {
		t.Fatal("capture of post-setup node revealed Km")
	}
	if !cm.NodeKey.Equal(k(1)) {
		t.Fatal("capture missing node key")
	}
	if len(cm.Clusters) != 2 {
		t.Fatalf("capture revealed %d cluster keys, want 2", len(cm.Clusters))
	}
	if !cm.Clusters[13].Equal(k(10)) || !cm.Clusters[9].Equal(k(11)) {
		t.Fatal("capture cluster keys wrong")
	}
	if !cm.InCluster || cm.CID != 13 {
		t.Fatal("capture cluster membership wrong")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	s := newStore()
	s.JoinCluster(13, k(10))
	cm := s.Snapshot()
	s.DropCluster(13)
	if !cm.Clusters[13].Equal(k(10)) {
		t.Fatal("snapshot mutated by later store changes")
	}
}

// TestKeyStoreRandomOps is the property test for the key store: any
// sequence of joins, neighbor additions, drops, replacements, and
// refreshes must preserve (a) KeyFor/HasNeighbor consistency, (b) the
// own-cluster-not-in-neighbors invariant, and (c) an exact match with a
// naive map-based model.
func TestKeyStoreRandomOps(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		s := newStore()
		model := map[uint32]crypt.Key{} // cid -> key, own cluster included
		ownCID := uint32(0)
		hasOwn := false

		for op := 0; op < 200; op++ {
			cid := uint32(rng.Intn(8)) // small ID space forces collisions
			key := k(byte(rng.Intn(200)))
			switch rng.Intn(5) {
			case 0: // join
				if !hasOwn {
					s.JoinCluster(cid, key)
					model[cid] = key
					ownCID, hasOwn = cid, true
				}
			case 1: // add neighbor (no-op for the own cluster, overwrite
				// otherwise)
				s.AddNeighbor(cid, key)
				if !(hasOwn && cid == ownCID) {
					model[cid] = key
				}
			case 2: // drop
				dropped := s.DropCluster(cid)
				_, existed := model[cid]
				if dropped != existed {
					t.Fatalf("trial %d op %d: drop(%d) = %v, model existed %v",
						trial, op, cid, dropped, existed)
				}
				delete(model, cid)
				if hasOwn && cid == ownCID {
					hasOwn = false
				}
			case 3: // replace
				replaced := s.ReplaceKey(cid, key)
				_, existed := model[cid]
				if replaced != existed {
					t.Fatalf("trial %d op %d: replace(%d) = %v, model %v",
						trial, op, cid, replaced, existed)
				}
				if existed {
					model[cid] = key
				}
			case 4: // hash refresh
				s.HashForwardAll()
				for c, mk := range model {
					model[c] = crypt.HashForward(mk)
				}
			}
			// Model equivalence.
			if s.ClusterKeyCount() != len(model) {
				t.Fatalf("trial %d op %d: count %d, model %d",
					trial, op, s.ClusterKeyCount(), len(model))
			}
			for c, mk := range model {
				got, ok := s.KeyFor(c)
				if !ok || !got.Equal(mk) {
					t.Fatalf("trial %d op %d: KeyFor(%d) mismatch", trial, op, c)
				}
			}
			// Own cluster never appears in the neighbor set.
			if hasOwn && s.HasNeighbor(ownCID) {
				t.Fatalf("trial %d op %d: own cluster in neighbor set", trial, op)
			}
			if s.InCluster != hasOwn || (hasOwn && s.CID != ownCID) {
				t.Fatalf("trial %d op %d: membership state diverged", trial, op)
			}
		}
	}
}
