package node

import "repro/internal/crypt"

// KeyStoreState is the serializable image of a KeyStore — the "stable
// storage" contents the warm-reboot path (Rebooter) assumes survive a
// crash. It holds raw key material; files written from it must be
// protected like the keys themselves. Erased keys stay erased: a zero
// Master round-trips to a zero Master, so persistence cannot resurrect
// Km (the paper's security argument depends on that).
type KeyStoreState struct {
	NodeKey             crypt.Key            `json:"node_key"`
	CandidateClusterKey crypt.Key            `json:"candidate_cluster_key"`
	Master              crypt.Key            `json:"master"`
	AddMaster           crypt.Key            `json:"add_master"`
	CID                 uint32               `json:"cid"`
	ClusterKey          crypt.Key            `json:"cluster_key"`
	InCluster           bool                 `json:"in_cluster"`
	Neighbors           map[uint32]crypt.Key `json:"neighbors,omitempty"`
	ChainCommit         crypt.Key            `json:"chain_commit"`
	ChainMaxSkip        int                  `json:"chain_max_skip"`
}

// Export captures the store's full state for durable storage.
func (s *KeyStore) Export() KeyStoreState {
	st := KeyStoreState{
		NodeKey:             s.NodeKey,
		CandidateClusterKey: s.CandidateClusterKey,
		Master:              s.Master,
		AddMaster:           s.AddMaster,
		CID:                 s.CID,
		ClusterKey:          s.ClusterKey,
		InCluster:           s.InCluster,
		ChainCommit:         s.Chain.Commit,
		ChainMaxSkip:        s.Chain.MaxSkip,
	}
	if len(s.neighbors) > 0 {
		st.Neighbors = make(map[uint32]crypt.Key, len(s.neighbors))
		for cid, k := range s.neighbors {
			st.Neighbors[cid] = k
		}
	}
	return st
}

// RestoreKeyStore rebuilds a KeyStore from an exported state. The chain
// verifier resumes at the persisted commitment, so revocation commands
// accepted before the crash stay consumed.
func RestoreKeyStore(st KeyStoreState) *KeyStore {
	ks := NewKeyStore(st.NodeKey, st.CandidateClusterKey, st.Master, st.ChainCommit, st.ChainMaxSkip)
	ks.AddMaster = st.AddMaster
	ks.CID = st.CID
	ks.ClusterKey = st.ClusterKey
	ks.InCluster = st.InCluster
	for cid, k := range st.Neighbors {
		ks.neighbors[cid] = k
	}
	return ks
}
