// Package node defines the runtime-independent node abstraction: the
// Behavior state machine every protocol implements, the Context through
// which a behavior talks to whatever runtime hosts it, and the KeyStore
// that holds a sensor's key material with explicit erasure.
//
// Protocol logic (internal/core and the baselines) is written once against
// these interfaces and runs unmodified under two hosts:
//
//   - internal/sim, a deterministic sequential discrete-event simulator
//     used for every experiment (reproducible given a seed), and
//   - internal/live, a goroutine-per-node runtime with channel radios used
//     by the examples to exercise the same code under real concurrency.
package node

import (
	"time"

	"repro/internal/crypt"
	"repro/internal/xrand"
)

// ID identifies a node on the radio. The base station is, by convention in
// this repository, node 0.
type ID = uint32

// Tag distinguishes a behavior's timers from one another.
type Tag int

// TimerID names a scheduled timer so it can be cancelled. The zero value
// is never a valid timer.
type TimerID uint64

// Context is the interface a hosting runtime provides to a Behavior. All
// methods must be called only from within the behavior's own callbacks
// (Start, Receive, Timer); contexts are not safe for use from other
// goroutines.
type Context interface {
	// ID returns this node's radio identifier.
	ID() ID
	// Now returns the current virtual (or wall-clock-derived) time.
	Now() time.Duration
	// Broadcast transmits a packet to every radio neighbor. This is the
	// only transmission primitive — the medium is inherently broadcast,
	// which is exactly the property the paper's cluster keys exploit.
	Broadcast(pkt []byte)
	// SetTimer schedules a Timer(tag) callback after d and returns a
	// handle that can cancel it.
	SetTimer(d time.Duration, tag Tag) TimerID
	// CancelTimer cancels a pending timer; cancelling an already-fired or
	// unknown timer is a no-op.
	CancelTimer(id TimerID)
	// Rand returns this node's private deterministic random stream.
	Rand() *xrand.RNG
	// ChargeCipher charges encrypting or decrypting n bytes to this
	// node's energy meter. Radio costs are charged by the runtime;
	// behaviors report their own crypto work through these two methods.
	ChargeCipher(n int)
	// ChargeMAC charges MAC'ing or hashing n bytes to this node's meter.
	ChargeMAC(n int)
	// Die removes this node from the network (battery depletion or
	// destruction). No further callbacks are delivered.
	Die()
}

// Behavior is a node's protocol state machine. Runtimes guarantee that the
// three callbacks are never invoked concurrently for the same node, so
// behaviors need no internal locking.
type Behavior interface {
	// Start runs once when the node boots, before any message delivery.
	Start(ctx Context)
	// Receive handles a packet overheard on the radio. from is the
	// link-layer sender. Behaviors must treat the packet as untrusted
	// bytes; all authentication happens in protocol code.
	Receive(ctx Context, from ID, pkt []byte)
	// Timer handles the expiry of a timer set with SetTimer.
	Timer(ctx Context, tag Tag)
}

// Rebooter is implemented by behaviors that support a warm restart after
// a crash: key material in stable storage survived, but every pending
// timer and in-flight exchange did not. Runtimes call Reboot instead of
// Start when reviving a crashed node whose behavior implements it; the
// behavior must re-arm whatever timers its current phase needs.
type Rebooter interface {
	Reboot(ctx Context)
}

// KeyStore holds one sensor node's key material, mirroring the paper's
// Section IV-A inventory: the node key Ki, the candidate cluster key Kci,
// the master key Km (erased after setup), the optional addition master KMC
// (erased after joining), the adopted cluster (CID, Kc), the set S of
// neighboring clusters' keys, and the revocation-chain verifier.
//
// All erasure is explicit and zeroizes the material, because the paper's
// security argument depends on captured nodes not containing Km or KMC.
type KeyStore struct {
	// NodeKey is Ki, shared with the base station, never erased.
	NodeKey crypt.Key
	// CandidateClusterKey is Kci, used only if the node elects itself
	// clusterhead.
	CandidateClusterKey crypt.Key
	// Master is Km during setup; zero after EraseMaster.
	Master crypt.Key
	// AddMaster is KMC on late-deployed nodes; zero otherwise/after use.
	AddMaster crypt.Key

	// CID is the adopted cluster's ID; valid once InCluster is true.
	CID uint32
	// ClusterKey is Kc for the adopted cluster.
	ClusterKey crypt.Key
	// InCluster reports whether the node has joined a cluster.
	InCluster bool

	// Neighbor cluster keys, keyed by CID (the paper's set S, minus the
	// node's own cluster key which is stored above).
	neighbors map[uint32]crypt.Key

	// Chain authenticates revocation commands (Section IV-D).
	Chain *crypt.ChainVerifier
}

// NewKeyStore returns a store with the given pre-deployment material.
func NewKeyStore(nodeKey, candidateClusterKey, master crypt.Key, chainCommit crypt.Key, maxSkip int) *KeyStore {
	return &KeyStore{
		NodeKey:             nodeKey,
		CandidateClusterKey: candidateClusterKey,
		Master:              master,
		neighbors:           make(map[uint32]crypt.Key),
		Chain:               crypt.NewChainVerifier(chainCommit, maxSkip),
	}
}

// JoinCluster records membership in cluster cid with key kc.
func (s *KeyStore) JoinCluster(cid uint32, kc crypt.Key) {
	s.CID = cid
	s.ClusterKey = kc
	s.InCluster = true
	// A node's own cluster never belongs in the neighbor set.
	delete(s.neighbors, cid)
}

// AddNeighbor stores a neighboring cluster's key. Storing the node's own
// cluster is a no-op.
func (s *KeyStore) AddNeighbor(cid uint32, kc crypt.Key) {
	if s.InCluster && cid == s.CID {
		return
	}
	s.neighbors[cid] = kc
}

// KeyFor returns the cluster key for cid — the node's own or a stored
// neighbor's — and whether it is known. This is the lookup a forwarder
// performs when Step 2 says "intermediate sensors will use the right key
// in their set S to authenticate the message."
func (s *KeyStore) KeyFor(cid uint32) (crypt.Key, bool) {
	if s.InCluster && cid == s.CID {
		return s.ClusterKey, true
	}
	k, ok := s.neighbors[cid]
	return k, ok
}

// HasNeighbor reports whether cid is a stored neighboring cluster.
func (s *KeyStore) HasNeighbor(cid uint32) bool {
	_, ok := s.neighbors[cid]
	return ok
}

// NeighborCIDs returns the stored neighboring cluster IDs in unspecified
// order.
func (s *KeyStore) NeighborCIDs() []uint32 {
	out := make([]uint32, 0, len(s.neighbors))
	for cid := range s.neighbors {
		out = append(out, cid)
	}
	return out
}

// ClusterKeyCount returns the total number of cluster keys held (own plus
// neighbors) — the quantity Figure 6 of the paper plots against density.
func (s *KeyStore) ClusterKeyCount() int {
	n := len(s.neighbors)
	if s.InCluster {
		n++
	}
	return n
}

// DropCluster deletes the key for cid (a revocation). If it is the node's
// own cluster the node is left clusterless; its neighbor entry is removed
// otherwise. It reports whether anything was deleted.
func (s *KeyStore) DropCluster(cid uint32) bool {
	if s.InCluster && cid == s.CID {
		s.ClusterKey.Zero()
		s.InCluster = false
		s.CID = 0
		return true
	}
	if k, ok := s.neighbors[cid]; ok {
		k.Zero()
		delete(s.neighbors, cid)
		return true
	}
	return false
}

// ReplaceKey installs a new key for cid, whether own cluster or neighbor.
// It reports whether cid was known.
func (s *KeyStore) ReplaceKey(cid uint32, k crypt.Key) bool {
	if s.InCluster && cid == s.CID {
		s.ClusterKey = k
		return true
	}
	if _, ok := s.neighbors[cid]; ok {
		s.neighbors[cid] = k
		return true
	}
	return false
}

// HashForwardAll applies the hash-based refresh Kc' = F(Kc) to every held
// cluster key — the paper's "renew the cluster keys by periodically
// hashing these keys at fixed time intervals".
func (s *KeyStore) HashForwardAll() {
	if s.InCluster {
		s.ClusterKey = crypt.HashForward(s.ClusterKey)
	}
	for cid, k := range s.neighbors {
		s.neighbors[cid] = crypt.HashForward(k)
	}
}

// EraseMaster destroys Km, as the protocol requires immediately after the
// key setup phase. It reports whether the key was present.
func (s *KeyStore) EraseMaster() bool {
	if s.Master.IsZero() {
		return false
	}
	s.Master.Zero()
	return true
}

// EraseAddMaster destroys KMC after a late join completes.
func (s *KeyStore) EraseAddMaster() bool {
	if s.AddMaster.IsZero() {
		return false
	}
	s.AddMaster.Zero()
	return true
}

// Snapshot returns a copy of every key currently held, labeled, for the
// adversary model: this is exactly what physical node capture reveals.
func (s *KeyStore) Snapshot() CapturedMaterial {
	cm := CapturedMaterial{
		NodeKey:   s.NodeKey,
		Master:    s.Master,
		AddMaster: s.AddMaster,
		InCluster: s.InCluster,
		CID:       s.CID,
		Clusters:  make(map[uint32]crypt.Key, len(s.neighbors)+1),
	}
	if s.InCluster {
		cm.Clusters[s.CID] = s.ClusterKey
	}
	for cid, k := range s.neighbors {
		cm.Clusters[cid] = k
	}
	return cm
}

// CapturedMaterial is everything an adversary learns by capturing a node
// (the paper's threat model assumes no tamper resistance, Section II).
type CapturedMaterial struct {
	NodeKey   crypt.Key
	Master    crypt.Key // zero if erased before capture, per the protocol
	AddMaster crypt.Key
	InCluster bool
	CID       uint32
	Clusters  map[uint32]crypt.Key // every cluster key held, by CID
}
