package transport

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// testCfg is a compressed, jitter-free configuration so transitions
// land on exact virtual timestamps.
func testCfg() Config {
	return Config{
		ARQ:              true,
		MaxRetries:       1,
		RetryBase:        10 * time.Millisecond,
		RetryCap:         40 * time.Millisecond,
		RetryJitter:      -1, // disabled
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		FlapLimit:        3,
		FlapWindow:       10 * time.Second,
		Quarantine:       time.Second,
	}
}

// sink collects an endpoint's outbound frames.
type sink struct {
	frames []Frame
}

func (s *sink) send(to int, raw []byte) {
	f, err := ParseFrame(raw)
	if err != nil {
		panic(err)
	}
	// Clone the payload: endpoints reuse scratch buffers.
	if f.Payload != nil {
		cp := make([]byte, len(f.Payload))
		copy(cp, f.Payload)
		f.Payload = cp
	}
	s.frames = append(s.frames, f)
}

func (s *sink) last() Frame { return s.frames[len(s.frames)-1] }

// ackFor builds the ack a peer would send for frame f.
func ackFor(peer int, f Frame) []byte {
	return Frame{Kind: KindAck, From: uint32(peer), Epoch: f.Epoch, Seq: f.Seq}.Marshal()
}

func TestRetryDelayMonotoneCapped(t *testing.T) {
	cfg := Config{ARQ: true}.withDefaults()
	prev := time.Duration(0)
	for k := 0; k < 80; k++ {
		d := BaseRetryDelay(cfg, k)
		if d < prev {
			t.Fatalf("attempt %d: base delay %v < previous %v (not monotone)", k, d, prev)
		}
		if d > cfg.RetryCap {
			t.Fatalf("attempt %d: base delay %v exceeds cap %v", k, d, cfg.RetryCap)
		}
		prev = d
	}
	if got := BaseRetryDelay(cfg, 0); got != cfg.RetryBase {
		t.Fatalf("attempt 0 delay = %v, want RetryBase %v", got, cfg.RetryBase)
	}
	if got := BaseRetryDelay(cfg, 79); got != cfg.RetryCap {
		t.Fatalf("attempt 79 delay = %v, want cap %v", got, cfg.RetryCap)
	}
}

func TestRetryDelayJitterBounds(t *testing.T) {
	cfg := Config{ARQ: true}.withDefaults()
	rng := xrand.New(xrand.TrialSeed(7, 3, 11))
	for k := 0; k < 2000; k++ {
		attempt := k % 10
		base := BaseRetryDelay(cfg, attempt)
		lo := time.Duration(float64(base) * (1 - cfg.RetryJitter))
		hi := time.Duration(float64(base) * (1 + cfg.RetryJitter))
		d := RetryDelay(cfg, attempt, rng)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
}

func TestRetryDelayDeterministicPerStream(t *testing.T) {
	cfg := Config{ARQ: true}.withDefaults()
	seed := xrand.TrialSeed(42, 1, 2)
	a, b := xrand.New(seed), xrand.New(seed)
	for k := 0; k < 500; k++ {
		da, db := RetryDelay(cfg, k%8, a), RetryDelay(cfg, k%8, b)
		if da != db {
			t.Fatalf("draw %d: %v != %v for identical TrialSeed streams", k, da, db)
		}
	}
	// A different trial index must give a different schedule.
	c := xrand.New(xrand.TrialSeed(42, 1, 3))
	same := true
	for k := 0; k < 50; k++ {
		if RetryDelay(cfg, k%8, xrand.New(seed)) != RetryDelay(cfg, k%8, c) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct trial seeds produced identical jitter sequences")
	}
}

// drainRetries advances virtual time tick by tick until the endpoint
// has nothing in flight, without ever delivering an ack.
func drainRetries(e *Endpoint, now time.Duration) time.Duration {
	for {
		w, ok := e.NextWake()
		if !ok {
			return now
		}
		if w > now {
			now = w
		}
		e.Tick(now)
	}
}

func TestBreakerTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	out := &sink{}
	e := NewEndpoint(testCfg(), 0, xrand.New(1), out.send, func(int, []byte) {})
	e.SetMetrics(m)
	const peer = 7
	now := time.Duration(0)

	// Step 1: two exhausted sends (threshold 2) trip the breaker.
	for i := 0; i < 2; i++ {
		if got := e.BreakerState(peer); got != BreakerClosed {
			t.Fatalf("send %d: state = %v, want closed", i, got)
		}
		e.Send(peer, []byte("x"), now)
		now = drainRetries(e, now)
	}
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("after %d failures: state = %v, want open", 2, got)
	}
	if v := m.Opens.Value(); v != 1 {
		t.Fatalf("breaker opens = %d, want 1", v)
	}
	if v := m.OpenLinks.Value(); v != 1 {
		t.Fatalf("open links gauge = %d, want 1", v)
	}

	// Step 2: while open, sends degrade to best-effort (untracked).
	sent := len(out.frames)
	e.Send(peer, []byte("degraded"), now)
	if e.InFlight() != 0 {
		t.Fatal("open breaker must not track sends")
	}
	if len(out.frames) != sent+1 {
		t.Fatal("open breaker must still transmit best-effort")
	}
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("state = %v, want still open before cooldown", got)
	}

	// Step 3: after the cooldown a send becomes the half-open probe.
	now += 200 * time.Millisecond // past reopenAt
	e.Send(peer, []byte("probe"), now)
	if got := e.BreakerState(peer); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if e.InFlight() != 1 {
		t.Fatal("probe must be tracked")
	}
	// Concurrent sends while the probe is pending stay best-effort.
	e.Send(peer, []byte("bypass"), now)
	if e.InFlight() != 1 {
		t.Fatal("only one probe may be in flight in half-open")
	}

	// Step 4: the probe's ack closes the breaker.
	probe := out.frames[sent+1]
	e.HandleRaw(ackFor(peer, probe), now)
	if got := e.BreakerState(peer); got != BreakerClosed {
		t.Fatalf("after probe ack: state = %v, want closed", got)
	}
	if v := m.Closes.Value(); v != 1 {
		t.Fatalf("breaker closes = %d, want 1", v)
	}
	if v := m.OpenLinks.Value(); v != 0 {
		t.Fatalf("open links gauge = %d, want 0", v)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(testCfg(), 0, xrand.New(2), out.send, func(int, []byte) {})
	const peer = 3
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		e.Send(peer, []byte("x"), now)
		now = drainRetries(e, now)
	}
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	now += 150 * time.Millisecond
	e.Send(peer, []byte("probe"), now)
	if got := e.BreakerState(peer); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	now = drainRetries(e, now) // probe dies too
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("after probe failure: state = %v, want open again", got)
	}
}

func TestBreakerFlappingQuarantine(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	out := &sink{}
	cfg := testCfg()
	e := NewEndpoint(cfg, 0, xrand.New(3), out.send, func(int, []byte) {})
	e.SetMetrics(m)
	const peer = 5
	now := time.Duration(0)

	// Three opens inside the flap window: open #1 via threshold, then
	// two more via probe failures.
	for i := 0; i < 2; i++ {
		e.Send(peer, []byte("x"), now)
		now = drainRetries(e, now)
	}
	for open := 1; open < 3; open++ {
		if e.Quarantined(peer) {
			t.Fatalf("open %d: quarantined too early", open)
		}
		now += cfg.BreakerCooldown + time.Millisecond
		e.Send(peer, []byte("probe"), now)
		now = drainRetries(e, now)
	}
	if !e.Quarantined(peer) {
		t.Fatalf("after 3 opens in window: not quarantined (state=%v)", e.BreakerState(peer))
	}
	if v := m.Quarantines.Value(); v != 1 {
		t.Fatalf("quarantines = %d, want 1", v)
	}

	// Inside the quarantine, even cooldown-length waits admit nothing.
	now += cfg.BreakerCooldown + time.Millisecond
	e.Send(peer, []byte("still exiled"), now)
	if e.InFlight() != 0 || !e.Quarantined(peer) {
		t.Fatal("quarantined link admitted a tracked send before the quarantine elapsed")
	}

	// After the quarantine: probe, ack, recovery.
	now += cfg.Quarantine
	e.Send(peer, []byte("probe"), now)
	if got := e.BreakerState(peer); got != BreakerHalfOpen {
		t.Fatalf("post-quarantine state = %v, want half-open", got)
	}
	e.HandleRaw(ackFor(peer, out.last()), now)
	if got := e.BreakerState(peer); got != BreakerClosed {
		t.Fatalf("post-quarantine recovery: state = %v, want closed", got)
	}
	if e.Quarantined(peer) {
		t.Fatal("recovered link still reports quarantined")
	}
}

func TestAckClearsInFlightAndStaleEpochIgnored(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(testCfg(), 0, xrand.New(4), out.send, func(int, []byte) {})
	const peer = 2
	e.Send(peer, []byte("hello"), 0)
	if e.InFlight() != 1 {
		t.Fatal("tracked send not in flight")
	}
	f := out.last()

	// An ack for a different epoch (a previous incarnation) is ignored.
	stale := Frame{Kind: KindAck, From: peer, Epoch: f.Epoch + 1, Seq: f.Seq}.Marshal()
	e.HandleRaw(stale, 0)
	if e.InFlight() != 1 {
		t.Fatal("stale-epoch ack cleared in-flight state")
	}

	e.HandleRaw(ackFor(peer, f), 0)
	if e.InFlight() != 0 {
		t.Fatal("matching ack did not clear in-flight state")
	}
	if _, ok := e.NextWake(); ok {
		t.Fatal("NextWake set with nothing in flight")
	}
}

func TestReceiveWindowDupSuppression(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	var got []string
	out := &sink{}
	e := NewEndpoint(testCfg(), 1, xrand.New(5), out.send,
		func(from int, p []byte) { got = append(got, string(p)) })
	e.SetMetrics(m)

	mk := func(epoch, seq uint32, s string) []byte {
		return Frame{Kind: KindData, From: 0, Epoch: epoch, Seq: seq, Payload: []byte(s)}.Marshal()
	}

	// Out-of-order arrivals within the window are all fresh.
	e.HandleRaw(mk(9, 5, "e"), 0)
	e.HandleRaw(mk(9, 1, "a"), 0)
	e.HandleRaw(mk(9, 3, "c"), 0)
	// Replays are suppressed but still acked.
	acks := countKind(out.frames, KindAck)
	e.HandleRaw(mk(9, 5, "e"), 0)
	e.HandleRaw(mk(9, 1, "a"), 0)
	if len(got) != 3 {
		t.Fatalf("delivered %d payloads, want 3 (dups suppressed): %q", len(got), got)
	}
	if v := m.DupDrops.Value(); v != 2 {
		t.Fatalf("dup drops = %d, want 2", v)
	}
	if na := countKind(out.frames, KindAck); na != acks+2 {
		t.Fatalf("duplicates must still be acked: %d acks, want %d", na, acks+2)
	}

	// Far ahead: window slides, older-than-64 is assumed duplicate.
	e.HandleRaw(mk(9, 500, "far"), 0)
	e.HandleRaw(mk(9, 400, "ancient"), 0)
	if len(got) != 4 || got[3] != "far" {
		t.Fatalf("window slide delivered %q, want only \"far\" appended", got)
	}

	// A new epoch (peer rebooted, seqs restart) resets the window.
	e.HandleRaw(mk(10, 1, "reborn"), 0)
	if len(got) != 5 || got[4] != "reborn" {
		t.Fatalf("epoch change did not reset the window: %q", got)
	}
}

func countKind(frames []Frame, k Kind) int {
	n := 0
	for _, f := range frames {
		if f.Kind == k {
			n++
		}
	}
	return n
}

func TestRetransmitStopsAfterLateAck(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(testCfg(), 0, xrand.New(6), out.send, func(int, []byte) {})
	const peer = 1
	e.Send(peer, []byte("m"), 0)
	w, _ := e.NextWake()
	e.Tick(w) // one retransmission
	if v := countKind(out.frames, KindData); v != 2 {
		t.Fatalf("data transmissions = %d, want 2 (original + 1 retx)", v)
	}
	e.HandleRaw(ackFor(peer, out.last()), w)
	if e.InFlight() != 0 {
		t.Fatal("ack after retransmit did not clear in-flight state")
	}
	e.Tick(w + time.Second)
	if v := countKind(out.frames, KindData); v != 2 {
		t.Fatalf("retransmission after ack: %d data frames", v)
	}
}

func TestRebootResetsEpochAndLinks(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(testCfg(), 0, xrand.New(7), out.send, func(int, []byte) {})
	e.Send(1, []byte("old life"), 0)
	old := e.Epoch()
	e.Reboot()
	if e.Epoch() == old {
		t.Fatal("reboot kept the same epoch")
	}
	if e.InFlight() != 0 {
		t.Fatal("reboot kept in-flight frames")
	}
	e.Send(1, []byte("new life"), 0)
	if got := out.last(); got.Seq != 1 || got.Epoch == old {
		t.Fatalf("post-reboot frame = seq %d epoch %d, want seq 1 and a fresh epoch", got.Seq, got.Epoch)
	}
}

// TestRoundTripAllocs gates the transport hot path: one tracked send,
// its delivery, the ack, and the ack's processing.
func TestRoundTripAllocs(t *testing.T) {
	cfg := Config{ARQ: true}
	var a, b *Endpoint
	now := time.Duration(0)
	a = NewEndpoint(cfg, 0, xrand.New(8), func(to int, fr []byte) { b.HandleRaw(fr, now) }, func(int, []byte) {})
	b = NewEndpoint(cfg, 1, xrand.New(9), func(to int, fr []byte) { a.HandleRaw(fr, now) }, func(int, []byte) {})
	payload := []byte("0123456789abcdef0123456789abcdef")
	// Warm up maps and scratch.
	for i := 0; i < 64; i++ {
		a.Send(1, payload, now)
	}
	avg := testing.AllocsPerRun(200, func() {
		a.Send(1, payload, now)
	})
	// Tracked frame buffer + pending struct (+ amortized map growth).
	if avg > 3 {
		t.Fatalf("seal+ack round trip allocates %.1f objects, want <= 3", avg)
	}
}
