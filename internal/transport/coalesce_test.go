package transport

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

// coalesceCfg is testCfg plus ACK coalescing with a small high-water
// mark, so both the deadline and the count trigger are reachable in a
// few frames.
func coalesceCfg() Config {
	cfg := testCfg()
	cfg.AckDelay = 5 * time.Millisecond
	cfg.AckMax = 4
	return cfg
}

// dataFrom builds a data frame as peer would send it.
func dataFrom(peer int, epoch, seq uint32, s string) []byte {
	return Frame{Kind: KindData, From: uint32(peer), Epoch: epoch, Seq: seq, Payload: []byte(s)}.Marshal()
}

// TestAckCoalescingDeadlineFlush: frames arriving inside one delay
// window produce a single range-coded ack batch at the deadline, not one
// ack per frame.
func TestAckCoalescingDeadlineFlush(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(coalesceCfg(), 1, xrand.New(11), out.send, func(int, []byte) {})
	const peer = 0
	now := time.Duration(0)

	for seq := uint32(10); seq < 13; seq++ {
		e.HandleRaw(dataFrom(peer, 9, seq, "d"), now)
		now += time.Millisecond
	}
	if n := countKind(out.frames, KindAck) + countKind(out.frames, KindAckBatch); n != 0 {
		t.Fatalf("%d acks sent before the delay elapsed, want 0", n)
	}
	w, ok := e.NextWake()
	if !ok || w != 5*time.Millisecond {
		t.Fatalf("NextWake = %v, %v; want the first frame's ack deadline 5ms", w, ok)
	}
	e.Tick(w)
	batches := countKind(out.frames, KindAckBatch)
	if batches != 1 {
		t.Fatalf("deadline flush sent %d ack batches, want 1", batches)
	}
	b := out.last()
	want := []byte{0, 0, 0, 10, 0, 3} // one range: start 10, count 3
	if b.Kind != KindAckBatch || b.Epoch != 9 || string(b.Payload) != string(want) {
		t.Fatalf("batch = kind %v epoch %d payload %x, want epoch 9 payload %x", b.Kind, b.Epoch, b.Payload, want)
	}
	if _, ok := e.NextWake(); ok {
		t.Fatal("NextWake still set after the flush with nothing else pending")
	}
}

// TestAckCoalescingCountFlush: the AckMax-th pending ack flushes
// immediately, before the deadline.
func TestAckCoalescingCountFlush(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(coalesceCfg(), 1, xrand.New(12), out.send, func(int, []byte) {})
	for seq := uint32(1); seq <= 4; seq++ { // AckMax = 4
		e.HandleRaw(dataFrom(0, 3, seq, "d"), 0)
	}
	if n := countKind(out.frames, KindAckBatch); n != 1 {
		t.Fatalf("%d ack batches after AckMax frames at t=0, want 1", n)
	}
	b := out.last()
	want := []byte{0, 0, 0, 1, 0, 4}
	if string(b.Payload) != string(want) {
		t.Fatalf("batch payload %x, want %x", b.Payload, want)
	}
}

// TestAckCoalescingRangeSpansWraparound is the satellite edge case: a
// run of sequence numbers crossing 0xFFFFFFFF→0 must coalesce into ONE
// range, and the sender must clear every in-flight frame when it
// expands that range with the same mod-2^32 arithmetic.
func TestAckCoalescingRangeSpansWraparound(t *testing.T) {
	cfg := coalesceCfg()
	var wire []Frame
	now := time.Duration(0)
	var a, b *Endpoint
	a = NewEndpoint(cfg, 0, xrand.New(13), func(to int, fr []byte) {
		f, err := ParseFrame(fr)
		if err != nil {
			t.Fatalf("a sent unparseable frame: %v", err)
		}
		b.HandleRaw(fr, now)
		wire = append(wire, f)
	}, func(int, []byte) {})
	b = NewEndpoint(cfg, 1, xrand.New(14), func(to int, fr []byte) {
		f, err := ParseFrame(fr)
		if err != nil {
			t.Fatalf("b sent unparseable frame: %v", err)
		}
		if f.Payload != nil {
			f.Payload = append([]byte(nil), f.Payload...)
		}
		wire = append(wire, f)
		a.HandleRaw(fr, now)
	}, func(int, []byte) {})

	// Push a's send sequence to the edge of the wraparound.
	a.link(1).nextSeq = 0xFFFFFFFD
	for i := 0; i < 3; i++ { // seqs FFFFFFFE, FFFFFFFF, 0
		a.Send(1, []byte("w"), now)
	}
	if got := a.InFlight(); got != 3 {
		t.Fatalf("in flight before the batch = %d, want 3", got)
	}
	a.Send(1, []byte("w"), now) // seq 1: b hits AckMax and flushes synchronously
	// b owed 4 acks = AckMax, so the count trigger has already flushed.
	var batch *Frame
	for i := range wire {
		if wire[i].Kind == KindAckBatch {
			if batch != nil {
				t.Fatal("more than one ack batch for one run of frames")
			}
			batch = &wire[i]
		}
	}
	if batch == nil {
		t.Fatal("no ack batch on the wire")
	}
	want := []byte{0xFF, 0xFF, 0xFF, 0xFE, 0x00, 0x04} // ONE range across the wrap
	if string(batch.Payload) != string(want) {
		t.Fatalf("wraparound run encoded as %x, want single range %x", batch.Payload, want)
	}
	if got := a.InFlight(); got != 0 {
		t.Fatalf("in flight after wraparound batch = %d, want 0 (wrapped seqs not expanded?)", got)
	}
}

// TestAckCoalescingFlushOnReverseTraffic: sending data toward a peer we
// owe acks flushes them first, bounding ack latency without waiting for
// the deadline.
func TestAckCoalescingFlushOnReverseTraffic(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(coalesceCfg(), 1, xrand.New(15), out.send, func(int, []byte) {})
	e.HandleRaw(dataFrom(0, 5, 1, "d"), 0)
	e.HandleRaw(dataFrom(0, 5, 2, "d"), 0)
	if n := countKind(out.frames, KindAckBatch); n != 0 {
		t.Fatal("acks flushed before any trigger")
	}
	e.Send(0, []byte("reply"), time.Millisecond)
	if n := countKind(out.frames, KindAckBatch); n != 1 {
		t.Fatalf("reverse traffic flushed %d ack batches, want 1", n)
	}
	// The batch must precede the data frame on the wire.
	var sawBatch bool
	for _, f := range out.frames {
		if f.Kind == KindAckBatch {
			sawBatch = true
		}
		if f.Kind == KindData && f.Payload != nil && string(f.Payload) == "reply" && !sawBatch {
			t.Fatal("data frame went out before the owed acks")
		}
	}
}

// TestAckCoalescingFlushOnBreakerOpen: when a link's breaker trips, the
// acks owed to that peer go out immediately (the peer's retransmit state
// must not starve just because our sends to it keep failing).
func TestAckCoalescingFlushOnBreakerOpen(t *testing.T) {
	out := &sink{}
	cfg := coalesceCfg()
	cfg.AckDelay = time.Hour // only a state change can flush
	e := NewEndpoint(cfg, 1, xrand.New(16), out.send, func(int, []byte) {})
	const peer = 0
	now := time.Duration(0)

	// Two exhausted sends (threshold 2) trip the breaker. The ack must
	// be queued after the final Send (whose reverse-traffic trigger
	// would otherwise drain it) but before the retries exhaust.
	e.Send(peer, []byte("x"), now)
	now = drainRetries(e, now)
	e.Send(peer, []byte("x"), now)
	e.HandleRaw(dataFrom(peer, 5, 10, "d"), now)
	now = drainRetries(e, now)
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	last := out.last()
	if last.Kind != KindAckBatch {
		t.Fatalf("last frame on the wire = %v, want the breaker-open ack flush", last.Kind)
	}
	if len(e.link(peer).ackPend) != 0 {
		t.Fatal("acks still pending after breaker opened")
	}
}

// TestAckCoalescingEpochChangeFlushes: a batch may not mix epochs; a
// data frame from a rebooted peer flushes the old epoch's acks first.
func TestAckCoalescingEpochChangeFlushes(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(coalesceCfg(), 1, xrand.New(17), out.send, func(int, []byte) {})
	e.HandleRaw(dataFrom(0, 5, 7, "d"), 0)
	e.HandleRaw(dataFrom(0, 6, 1, "d"), 0) // peer rebooted
	batches := 0
	for _, f := range out.frames {
		if f.Kind == KindAckBatch {
			batches++
			if f.Epoch != 5 {
				t.Fatalf("flushed batch carries epoch %d, want the old epoch 5", f.Epoch)
			}
		}
	}
	if batches != 1 {
		t.Fatalf("%d batches flushed on epoch change, want 1", batches)
	}
	if l := e.link(0); len(l.ackPend) != 1 || l.ackEpoch != 6 {
		t.Fatalf("new epoch's ack not pending: %d pending, epoch %d", len(l.ackPend), l.ackEpoch)
	}
}

// TestAckCoalescingDisabledIsByteIdentical: with AckDelay zero the
// endpoint must emit exactly the classic per-frame KindAck stream — no
// batches, same bytes.
func TestAckCoalescingDisabledIsByteIdentical(t *testing.T) {
	run := func(cfg Config) []Frame {
		out := &sink{}
		e := NewEndpoint(cfg, 1, xrand.New(18), out.send, func(int, []byte) {})
		for seq := uint32(1); seq <= 5; seq++ {
			e.HandleRaw(dataFrom(0, 2, seq, "d"), 0)
		}
		e.Tick(time.Hour)
		return out.frames
	}
	plain := run(testCfg())
	zeroDelay := testCfg()
	zeroDelay.AckDelay = 0
	again := run(zeroDelay)
	if len(plain) != len(again) {
		t.Fatalf("frame counts differ: %d vs %d", len(plain), len(again))
	}
	for i := range plain {
		a, b := plain[i], again[i]
		if a.Kind != b.Kind || a.From != b.From || a.Epoch != b.Epoch || a.Seq != b.Seq {
			t.Fatalf("frame %d differs: %+v vs %+v", i, a, b)
		}
	}
	if countKind(plain, KindAck) != 5 || countKind(plain, KindAckBatch) != 0 {
		t.Fatalf("classic path emitted %d acks and %d batches, want 5 and 0",
			countKind(plain, KindAck), countKind(plain, KindAckBatch))
	}
}

// TestAckBatchBudgetCaps: a forged range with an absurd count must not
// expand past the per-frame budget (DoS guard), but must still be
// well-formed enough to process the budgeted prefix.
func TestAckBatchBudgetCaps(t *testing.T) {
	out := &sink{}
	e := NewEndpoint(coalesceCfg(), 0, xrand.New(19), out.send, func(int, []byte) {})
	const peer = 1
	e.Send(peer, []byte("x"), 0)
	sent := out.last()
	if e.InFlight() != 1 {
		t.Fatal("send not tracked")
	}
	// A hostile batch claiming 65535 acks starting far from our seq: it
	// must neither panic nor ack our frame.
	evil := Frame{Kind: KindAckBatch, From: peer, Epoch: sent.Epoch,
		Payload: []byte{0x10, 0x00, 0x00, 0x00, 0xFF, 0xFF}}.Marshal()
	e.HandleRaw(evil, 0)
	if e.InFlight() != 1 {
		t.Fatal("hostile batch cleared unrelated in-flight state")
	}
	// A malformed (non-multiple-of-6) payload is dropped entirely.
	bad := Frame{Kind: KindAckBatch, From: peer, Epoch: sent.Epoch,
		Payload: []byte{0, 0, 0, 1, 0}}.Marshal()
	e.HandleRaw(bad, 0)
	if e.InFlight() != 1 {
		t.Fatal("malformed batch mutated state")
	}
	// The honest single-range batch clears it.
	good := Frame{Kind: KindAckBatch, From: peer, Epoch: sent.Epoch,
		Payload: []byte{0, 0, 0, byte(sent.Seq), 0, 1}}.Marshal()
	e.HandleRaw(good, 0)
	if e.InFlight() != 0 {
		t.Fatal("honest batch did not clear in-flight state")
	}
}
