package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/xrand"
)

// udpPair opens two loopback carriers wired to each other and blocks
// until both directions are verified.
func udpPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a, err := ListenUDP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenUDP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(1, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(0, a.Addr().String()); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.WaitReady(5 * time.Second) }()
	go func() { errs <- b.WaitReady(5 * time.Second) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

func TestUDPEndpointRoundTrip(t *testing.T) {
	ca, cb := udpPair(t)

	got := make(chan string, 16)
	ea := NewEndpoint(Config{ARQ: true}, 0, xrand.New(1), ca.Send, func(int, []byte) {})
	eb := NewEndpoint(Config{ARQ: true}, 1, xrand.New(2), cb.Send,
		func(from int, p []byte) { got <- fmt.Sprintf("%d:%s", from, p) })

	// Pump each carrier's inbound frames into its endpoint from a test
	// goroutine. Real hosts do this from the node goroutine; the test
	// serializes with plain channels.
	done := make(chan struct{})
	go func() {
		for in := range cb.Inbound() {
			eb.HandleRaw(in.Frame, time.Duration(time.Now().UnixNano()))
		}
		close(done)
	}()
	ackSeen := make(chan struct{})
	go func() {
		n := 0
		for in := range ca.Inbound() {
			ea.HandleRaw(in.Frame, time.Duration(time.Now().UnixNano()))
			if n++; n == 3 {
				close(ackSeen)
			}
		}
	}()

	for k := 0; k < 3; k++ {
		ea.Send(1, []byte(fmt.Sprintf("udp%d", k)), time.Duration(time.Now().UnixNano()))
	}
	for k := 0; k < 3; k++ {
		select {
		case m := <-got:
			if want := fmt.Sprintf("0:udp%d", k); m != want {
				t.Fatalf("delivery %d = %q, want %q", k, m, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delivery %d", k)
		}
	}
	select {
	case <-ackSeen:
	case <-time.After(5 * time.Second):
		t.Fatal("sender never saw 3 acks")
	}

	cb.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("inbound channel not closed by Close")
	}
}

func TestUDPWaitReadyTimesOutOnDeadPeer(t *testing.T) {
	a, err := ListenUDP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// A peer that was never started: probes go nowhere.
	dead, err := ListenUDP(9, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if err := a.AddPeer(1, deadAddr); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitReady(300 * time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a closed peer")
	}
}

func TestUDPCloseIdempotentAndSendAfterClose(t *testing.T) {
	a, err := ListenUDP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(1, "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a.Send(1, []byte("after close")) // must not panic
}
