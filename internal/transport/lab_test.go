package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/topology"
)

// collector records delivered payloads; it is a pure sink behavior.
type collector struct {
	got []string
}

func (c *collector) Start(node.Context)                          {}
func (c *collector) Receive(_ node.Context, _ node.ID, p []byte) { c.got = append(c.got, string(p)) }
func (c *collector) Timer(node.Context, node.Tag)                {}

// idle is a behavior that does nothing (a live peer with no traffic).
type idle struct{}

func (idle) Start(node.Context)                    {}
func (idle) Receive(node.Context, node.ID, []byte) {}
func (idle) Timer(node.Context, node.Tag)          {}

func lineGraph(n int) *topology.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return topology.FromPositions(pos, float64(n+1), 1.1, geom.Planar)
}

// labPair builds a 2-node lab: node 0 collects, node 1 sends via Do.
func labPair(t *testing.T, cfg Config, drop func(time.Duration, int, int) bool) (*Lab, *collector, Metrics) {
	t.Helper()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	sinkB := &collector{}
	lab, err := NewLab(LabConfig{
		Graph:     lineGraph(2),
		Seed:      1234,
		Transport: cfg,
		Drop:      drop,
		Metrics:   m,
	}, []node.Behavior{sinkB, idle{}})
	if err != nil {
		t.Fatal(err)
	}
	return lab, sinkB, m
}

// TestLabARQRecoversFromBlackout drops every frame (data and acks) for
// the first 50ms; messages sent inside the blackout are recovered by
// retransmission with ARQ on and lost with ARQ off.
func TestLabARQRecoversFromBlackout(t *testing.T) {
	blackout := func(now time.Duration, from, to int) bool { return now < 50*time.Millisecond }
	send := func(lab *Lab) {
		for k := 0; k < 5; k++ {
			msg := fmt.Sprintf("m%d", k)
			lab.Do(time.Duration(k+1)*5*time.Millisecond, 1, func(ctx node.Context) {
				ctx.Broadcast([]byte(msg))
			})
		}
		lab.Run(2 * time.Second)
	}

	arqLab, arqSink, m := labPair(t, Config{ARQ: true}, blackout)
	send(arqLab)
	if len(arqSink.got) != 5 {
		t.Fatalf("ARQ delivered %d/5 through the blackout: %q", len(arqSink.got), arqSink.got)
	}
	if m.Retransmits.Value() == 0 {
		t.Fatal("blackout recovery happened without retransmissions?")
	}

	bareLab, bareSink, _ := labPair(t, Config{}, blackout)
	send(bareLab)
	if len(bareSink.got) != 0 {
		t.Fatalf("bare transport delivered %d messages through a total blackout", len(bareSink.got))
	}
}

// TestLabFramedDelivery checks framing without ARQ: payloads travel
// wrapped in transport frames and arrive intact and exactly once on a
// clean medium.
func TestLabFramedDelivery(t *testing.T) {
	lab, sink, m := labPair(t, Config{Framed: true}, nil)
	for k := 0; k < 4; k++ {
		msg := fmt.Sprintf("m%d", k)
		lab.Do(time.Duration(k+1)*10*time.Millisecond, 1, func(ctx node.Context) {
			ctx.Broadcast([]byte(msg))
		})
	}
	lab.Run(time.Second)
	if len(sink.got) != 4 {
		t.Fatalf("framed transport delivered %d/4: %q", len(sink.got), sink.got)
	}
	if m.DupDrops.Value() != 0 {
		t.Fatalf("clean run recorded %d dup drops", m.DupDrops.Value())
	}
}

// TestLabBreakerOpensOnCrashAndRecovers crashes the receiver, lets the
// sender's breaker open, reboots the receiver, and checks the link
// closes again via the half-open probe.
func TestLabBreakerOpensOnCrashAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	sinkB := &collector{}
	lab, err := NewLab(LabConfig{
		Graph:     lineGraph(2),
		Seed:      99,
		Transport: Config{ARQ: true},
		Metrics:   m,
	}, []node.Behavior{sinkB, idle{}})
	if err != nil {
		t.Fatal(err)
	}
	// Sender broadcasts every 100ms for 12s.
	for k := 0; k < 120; k++ {
		msg := fmt.Sprintf("m%d", k)
		lab.Do(time.Duration(k)*100*time.Millisecond, 1, func(ctx node.Context) {
			ctx.Broadcast([]byte(msg))
		})
	}
	lab.ScheduleCrash(200*time.Millisecond, 0)
	lab.Run(6 * time.Second)
	if got := lab.Endpoint(1).BreakerState(0); got == BreakerClosed {
		t.Fatalf("breaker still closed after %v of dead peer (opens=%d fails=%d)",
			lab.Now(), m.Opens.Value(), m.Failures.Value())
	}
	if m.Opens.Value() == 0 {
		t.Fatal("no breaker opens recorded")
	}
	before := len(sinkB.got)

	lab.ScheduleReboot(6*time.Second+time.Millisecond, 0)
	lab.Run(13 * time.Second)
	if got := lab.Endpoint(1).BreakerState(0); got != BreakerClosed {
		t.Fatalf("breaker %v after peer reboot and %v of traffic, want closed", got, lab.Now())
	}
	if len(sinkB.got) <= before {
		t.Fatal("no deliveries after the peer rebooted")
	}
	if m.Closes.Value() == 0 {
		t.Fatal("no breaker closes recorded")
	}
}

// TestLabCoalescedAcksDeliverUnderLoss runs the blackout-recovery
// scenario with ACK coalescing enabled and requires the same 5/5
// delivery as the classic per-frame ack path: batched acks must clear
// inflight state just as reliably under loss and retransmission.
func TestLabCoalescedAcksDeliverUnderLoss(t *testing.T) {
	blackout := func(now time.Duration, from, to int) bool { return now < 50*time.Millisecond }
	lab, sink, m := labPair(t, Config{ARQ: true, AckDelay: 4 * time.Millisecond}, blackout)
	for k := 0; k < 5; k++ {
		msg := fmt.Sprintf("m%d", k)
		lab.Do(time.Duration(k+1)*5*time.Millisecond, 1, func(ctx node.Context) {
			ctx.Broadcast([]byte(msg))
		})
	}
	lab.Run(2 * time.Second)
	if len(sink.got) != 5 {
		t.Fatalf("coalesced-ack ARQ delivered %d/5 through the blackout: %q", len(sink.got), sink.got)
	}
	if m.Retransmits.Value() == 0 {
		t.Fatal("blackout recovery happened without retransmissions?")
	}
	if got := lab.Endpoint(1).InFlight(); got != 0 {
		t.Fatalf("%d frames still inflight after batched acks", got)
	}
}

// TestLabDeterminism runs an identical lossy ARQ scenario twice and
// requires identical delivery sequences and identical counters.
func TestLabDeterminism(t *testing.T) {
	run := func() ([]string, map[string]uint64) {
		reg := obs.NewRegistry()
		m := NewMetrics(reg)
		sinkB := &collector{}
		lab, err := NewLab(LabConfig{
			Graph:     lineGraph(3),
			Seed:      4242,
			Transport: Config{ARQ: true},
			Loss:      0.4,
			Metrics:   m,
		}, []node.Behavior{sinkB, idle{}, idle{}})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 30; k++ {
			msg := fmt.Sprintf("m%d", k)
			src := 1 + k%2
			lab.Do(time.Duration(k+1)*7*time.Millisecond, src, func(ctx node.Context) {
				ctx.Broadcast([]byte(msg))
			})
		}
		lab.Run(5 * time.Second)
		counts := map[string]uint64{
			"tx":    m.TxData.Value(),
			"retx":  m.Retransmits.Value(),
			"dup":   m.DupDrops.Value(),
			"acks":  m.RxAcks.Value(),
			"fails": m.Failures.Value(),
		}
		return sinkB.got, counts
	}
	got1, c1 := run()
	got2, c2 := run()
	if len(got1) != len(got2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, got1[i], got2[i])
		}
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("counter %s differs across identical runs: %d vs %d", k, v, c2[k])
		}
	}
	if len(got1) == 0 {
		t.Fatal("lossy run delivered nothing; scenario too harsh to be meaningful")
	}
}
