package transport

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/node"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Lab is a deterministic, single-goroutine, virtual-time harness that
// hosts node.Behaviors over transport Endpoints. It exists so the ARQ
// and breaker machinery can be driven by seeded chaos plans inside the
// experiment harness: same seed, same event order, same retransmit
// schedule, byte-identical results at any worker count.
//
// It deliberately mirrors internal/live's stream layout (medium =
// root.Split(0), host i = root.Split(1+i)) but replaces goroutines and
// wall clocks with an event heap keyed by (time, insertion order).
type Lab struct {
	cfg   LabConfig
	hosts []*labHost
	// medium draws per-frame latency jitter and loss, in event order.
	medium *xrand.RNG
	events eventHeap
	seq    uint64
	now    time.Duration
}

// LabConfig configures a Lab.
type LabConfig struct {
	// Graph is the radio topology (required).
	Graph *topology.Graph
	// Seed roots every random stream in the lab.
	Seed uint64
	// Transport is the reliability configuration shared by all hosts.
	// The zero value runs bare fire-and-forget delivery.
	Transport Config
	// Latency is the fixed one-hop propagation delay (default 1ms).
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) spread per frame (default
	// 200µs) so deliveries from one broadcast interleave realistically.
	Jitter time.Duration
	// Loss drops each frame independently with this probability, at the
	// receiver, after Drop.
	Loss float64
	// Drop, when non-nil, is consulted per (receiver) frame arrival —
	// the seam for internal/faults injectors. Returning true discards
	// the frame.
	Drop func(now time.Duration, from, to int) bool
	// Metrics instruments every host's endpoint (shared counters).
	Metrics Metrics
}

type labEvent struct {
	at   time.Duration
	seq  uint64
	kind uint8
	host int
	from int
	tid  node.TimerID
	tag  node.Tag
	pkt  []byte
	fn   func(node.Context)
}

const (
	evStart = iota
	evArrive
	evTimer
	evCall
	evCrash
	evReboot
	evTick
)

type eventHeap []*labEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*labEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// labHost implements node.Context for one behavior. Energy accounting
// is not modeled in the lab (Charge* are no-ops): the lab measures
// delivery and state, not joules.
type labHost struct {
	lab      *Lab
	idx      int
	behavior node.Behavior
	rng      *xrand.RNG
	ep       *Endpoint
	alive    bool
	timers   map[node.TimerID]node.Tag
	nextTID  node.TimerID
	tickAt   time.Duration
	tickSet  bool
}

// NewLab builds a lab hosting behaviors[i] on graph node i. A nil
// behavior leaves the node dark (no radio presence). Behaviors start
// (in index order) when Run first advances time.
func NewLab(cfg LabConfig, behaviors []node.Behavior) (*Lab, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("transport: lab requires a graph")
	}
	if len(behaviors) != cfg.Graph.N() {
		return nil, fmt.Errorf("transport: %d behaviors for %d nodes", len(behaviors), cfg.Graph.N())
	}
	if cfg.Latency == 0 {
		cfg.Latency = time.Millisecond
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 200 * time.Microsecond
	}
	root := xrand.New(cfg.Seed)
	l := &Lab{cfg: cfg, medium: root.Split(0)}
	l.hosts = make([]*labHost, len(behaviors))
	for i, b := range behaviors {
		h := &labHost{
			lab:      l,
			idx:      i,
			behavior: b,
			rng:      root.Split(uint64(1 + i)),
			alive:    b != nil,
			timers:   make(map[node.TimerID]node.Tag),
		}
		if cfg.Transport.Enabled() && b != nil {
			idx := i
			h.ep = NewEndpoint(cfg.Transport, i, h.rng.Split(^uint64(0)),
				func(to int, frame []byte) { l.transmit(idx, to, frame) },
				func(from int, payload []byte) { l.deliverUp(idx, from, payload) })
			h.ep.SetMetrics(cfg.Metrics)
		}
		l.hosts[i] = h
		if b != nil {
			l.push(&labEvent{at: 0, kind: evStart, host: i})
		}
	}
	return l, nil
}

func (l *Lab) push(e *labEvent) {
	e.seq = l.seq
	l.seq++
	heap.Push(&l.events, e)
}

// transmit schedules one frame's arrival at a peer. The frame is cloned
// because endpoints reuse their marshal scratch.
func (l *Lab) transmit(from, to int, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	at := l.now + l.cfg.Latency + time.Duration(l.medium.Float64()*float64(l.cfg.Jitter))
	l.push(&labEvent{at: at, kind: evArrive, host: to, from: from, pkt: cp})
}

// arrive applies the loss model and hands the frame to the receiver.
func (l *Lab) arrive(e *labEvent) {
	h := l.hosts[e.host]
	if h == nil || !h.alive {
		return
	}
	if l.cfg.Drop != nil && l.cfg.Drop(l.now, e.from, e.host) {
		return
	}
	if l.cfg.Loss > 0 && l.medium.Bool(l.cfg.Loss) {
		return
	}
	if h.ep != nil {
		h.ep.HandleRaw(e.pkt, l.now)
		h.rearmTick()
		return
	}
	h.behavior.Receive(h, node.ID(e.from), e.pkt)
}

// deliverUp is the endpoint→behavior seam.
func (l *Lab) deliverUp(host, from int, payload []byte) {
	h := l.hosts[host]
	if !h.alive {
		return
	}
	h.behavior.Receive(h, node.ID(from), payload)
}

// Run processes events until the heap is exhausted or virtual time
// would pass until. Call repeatedly with increasing horizons to
// interleave external actions (Do, ScheduleCrash) with protocol time.
func (l *Lab) Run(until time.Duration) {
	for l.events.Len() > 0 {
		if l.events[0].at > until {
			break
		}
		e := heap.Pop(&l.events).(*labEvent)
		if e.at > l.now {
			l.now = e.at
		}
		h := l.hosts[e.host]
		switch e.kind {
		case evStart:
			if h.alive {
				h.behavior.Start(h)
			}
		case evArrive:
			l.arrive(e)
		case evTimer:
			if !h.alive {
				break
			}
			tag, ok := h.timers[e.tid]
			if !ok {
				break // cancelled, or wiped by a crash
			}
			delete(h.timers, e.tid)
			h.behavior.Timer(h, tag)
		case evCall:
			if h.alive {
				e.fn(h)
			}
		case evCrash:
			h.alive = false
			h.timers = make(map[node.TimerID]node.Tag)
		case evReboot:
			if h.behavior == nil || h.alive {
				break
			}
			h.alive = true
			if h.ep != nil {
				h.ep.Reboot()
				h.tickSet = false
			}
			if rb, ok := h.behavior.(node.Rebooter); ok {
				rb.Reboot(h)
			} else {
				h.behavior.Start(h)
			}
		case evTick:
			h.tickSet = false
			if h.alive && h.ep != nil {
				h.ep.Tick(l.now)
				h.rearmTick()
			}
		}
		// Behavior callbacks may have queued sends; keep their
		// retransmit clock armed.
		if h != nil && h.alive && h.ep != nil {
			h.rearmTick()
		}
	}
	if l.now < until {
		l.now = until
	}
}

// rearmTick keeps an evTick queued at the endpoint's earliest
// retransmit deadline. Stale ticks are harmless (Tick of a quiet
// endpoint does nothing and draws no randomness).
func (h *labHost) rearmTick() {
	w, ok := h.ep.NextWake()
	if !ok {
		return
	}
	if w <= h.lab.now {
		w = h.lab.now
	}
	if h.tickSet && h.tickAt <= w {
		return
	}
	h.tickAt = w
	h.tickSet = true
	h.lab.push(&labEvent{at: w, kind: evTick, host: h.idx})
}

// Now returns the lab's current virtual time.
func (l *Lab) Now() time.Duration { return l.now }

// Do schedules fn to run as node i (with its Context) at time at.
func (l *Lab) Do(at time.Duration, i int, fn func(node.Context)) {
	l.push(&labEvent{at: at, kind: evCall, host: i, fn: fn})
}

// ScheduleCrash fail-stops node i at time at: timers cleared, radio
// dark. Endpoint state freezes with it (peers see silence and trip
// their breakers).
func (l *Lab) ScheduleCrash(at time.Duration, i int) {
	l.push(&labEvent{at: at, kind: evCrash, host: i})
}

// ScheduleReboot revives a crashed node i at time at with a warm
// restart (node.Rebooter when implemented, Start otherwise) and a
// fresh transport epoch.
func (l *Lab) ScheduleReboot(at time.Duration, i int) {
	l.push(&labEvent{at: at, kind: evReboot, host: i})
}

// Alive reports whether node i is currently up.
func (l *Lab) Alive(i int) bool { return l.hosts[i].alive }

// Endpoint exposes node i's transport endpoint (nil when the transport
// is disabled or the node is dark); tests use it to inspect breaker
// state.
func (l *Lab) Endpoint(i int) *Endpoint { return l.hosts[i].ep }

// --- labHost: node.Context ---

func (h *labHost) ID() node.ID        { return node.ID(h.idx) }
func (h *labHost) Now() time.Duration { return h.lab.now }
func (h *labHost) Rand() *xrand.RNG   { return h.rng }
func (h *labHost) ChargeCipher(n int) {}
func (h *labHost) ChargeMAC(n int)    {}
func (h *labHost) Die()               { h.alive = false; h.timers = make(map[node.TimerID]node.Tag) }

// Broadcast fans the packet out to every radio neighbor, through the
// endpoint when the transport is enabled. The packet is cloned once:
// behaviors reuse marshal scratch across sends.
func (h *labHost) Broadcast(pkt []byte) {
	nbs := h.lab.cfg.Graph.Neighbors(h.idx)
	if h.ep != nil {
		for _, nb := range nbs {
			if h.lab.hosts[nb].behavior != nil {
				h.ep.Send(int(nb), pkt, h.lab.now)
			}
		}
		h.rearmTick()
		return
	}
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	for _, nb := range nbs {
		if h.lab.hosts[nb].behavior != nil {
			h.lab.transmitBare(h.idx, int(nb), cp)
		}
	}
}

// transmitBare schedules a pre-cloned packet without re-copying.
func (l *Lab) transmitBare(from, to int, pkt []byte) {
	at := l.now + l.cfg.Latency + time.Duration(l.medium.Float64()*float64(l.cfg.Jitter))
	l.push(&labEvent{at: at, kind: evArrive, host: to, from: from, pkt: pkt})
}

func (h *labHost) SetTimer(d time.Duration, tag node.Tag) node.TimerID {
	h.nextTID++
	id := h.nextTID
	h.timers[id] = tag
	h.lab.push(&labEvent{at: h.lab.now + d, kind: evTimer, host: h.idx, tid: id, tag: tag})
	return id
}

func (h *labHost) CancelTimer(id node.TimerID) { delete(h.timers, id) }
