// Package transport is a reliable datagram layer for the live runtime:
// sequence-numbered frames, per-link ACK/ARQ with capped exponential
// backoff and jitter, duplicate suppression via a sliding receive
// window, and per-link health tracking (consecutive-failure circuit
// breaker with half-open probing and quarantine of flapping links).
//
// The package is split along a carrier seam: an Endpoint is a pure,
// single-goroutine state machine driven by explicit timestamps, and a
// Carrier moves raw frames between endpoints. The in-process channel
// carrier inside internal/live and the UDP loopback carrier (udp.go)
// are interchangeable, so the same protocol code runs hermetically
// under go test -race and across real OS processes.
//
// Determinism: an Endpoint draws jitter from the *xrand.RNG it was
// constructed with and never consults wall-clock or global randomness,
// so identical call sequences produce identical retransmit schedules.
// Map iteration on hot decision paths (Tick) is sorted for the same
// reason. The zero Config disables both framing and ARQ, keeping every
// experiment family's golden output byte-identical.
package transport

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// Config holds the reliability knobs. The zero value means "off": no
// framing, no ARQ, no breakers — the live runtime's legacy fire-and-
// forget path. Setting ARQ implies framing.
type Config struct {
	// Framed wraps every payload in a transport frame (with epoch and
	// sequence number) and suppresses duplicates at the receiver, but
	// does not ack or retransmit. Required (and implied) by ARQ; useful
	// alone when the carrier is a real socket.
	Framed bool
	// ARQ enables per-link acknowledgements and retransmission.
	ARQ bool

	// MaxRetries is how many times an unacked frame is retransmitted
	// before the send is declared failed (so a frame is sent at most
	// 1+MaxRetries times). Default 4.
	MaxRetries int
	// RetryBase is the backoff before the first retransmission; attempt
	// k waits RetryBase<<k, capped at RetryCap. Default 20ms.
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff. Default 320ms.
	RetryCap time.Duration
	// RetryJitter spreads each delay uniformly over ±RetryJitter×delay
	// to decorrelate retransmit storms. Default 0.25; negative disables.
	RetryJitter float64

	// BreakerThreshold opens a link's circuit breaker after this many
	// consecutive send failures (exhausted retry budgets). Default 3;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects traffic before
	// admitting a single half-open probe. Default 2s.
	BreakerCooldown time.Duration
	// FlapLimit quarantines a link that opens its breaker this many
	// times within FlapWindow. Default 3; negative disables.
	FlapLimit int
	// FlapWindow is the sliding window for flap counting. Default 10s.
	FlapWindow time.Duration
	// Quarantine is how long a flapping link is exiled: no tracked
	// sends, no probes, best-effort only. Default 30s.
	Quarantine time.Duration

	// AckDelay enables ACK coalescing (requires ARQ): instead of acking
	// every data frame immediately, acks accumulate per link for up to
	// AckDelay and go out as one range-coded KindAckBatch frame. Pending
	// acks also flush when AckMax of them are queued, when reverse data
	// traffic toward the peer proves the radio is about to be used
	// anyway, and when the link's breaker changes state. 0 keeps the
	// classic ack-per-frame path byte-identical.
	AckDelay time.Duration
	// AckMax flushes a link's pending acks early once this many are
	// queued. Default 16 when AckDelay > 0.
	AckMax int
}

// Enabled reports whether the transport does anything beyond passing
// payloads through (i.e. whether frames appear on the wire).
func (c Config) Enabled() bool { return c.Framed || c.ARQ }

// Validate rejects raw configs whose knobs withDefaults would otherwise
// quietly replace or misread: negative durations and retry counts are
// deployment-file typos, not requests for a default. The documented
// "negative disables" knobs (RetryJitter, BreakerThreshold, FlapLimit)
// stay legal. Mirrors core.Config.Validate.
func (c Config) Validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"RetryBase", c.RetryBase},
		{"RetryCap", c.RetryCap},
		{"BreakerCooldown", c.BreakerCooldown},
		{"FlapWindow", c.FlapWindow},
		{"Quarantine", c.Quarantine},
		{"AckDelay", c.AckDelay},
	} {
		if d.v < 0 {
			return fmt.Errorf("transport: %s must not be negative, got %v", d.name, d.v)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("transport: MaxRetries must not be negative, got %d", c.MaxRetries)
	}
	if c.AckMax < 0 {
		return fmt.Errorf("transport: AckMax must not be negative, got %d", c.AckMax)
	}
	if c.AckDelay > 0 && !c.ARQ {
		return fmt.Errorf("transport: AckDelay requires ARQ")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.ARQ {
		c.Framed = true
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.RetryBase == 0 {
		c.RetryBase = 20 * time.Millisecond
	}
	if c.RetryCap == 0 {
		c.RetryCap = 320 * time.Millisecond
	}
	if c.RetryJitter == 0 {
		c.RetryJitter = 0.25
	}
	if c.RetryJitter < 0 {
		c.RetryJitter = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.FlapLimit == 0 {
		c.FlapLimit = 3
	}
	if c.FlapWindow == 0 {
		c.FlapWindow = 10 * time.Second
	}
	if c.Quarantine == 0 {
		c.Quarantine = 30 * time.Second
	}
	if c.AckDelay > 0 && c.AckMax <= 0 {
		c.AckMax = 16
	}
	return c
}

// BaseRetryDelay is the deterministic (jitter-free) backoff before
// retransmission attempt k (0-based): RetryBase<<k capped at RetryCap.
func BaseRetryDelay(cfg Config, attempt int) time.Duration {
	cfg = cfg.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := cfg.RetryBase
	// Shifting past 62 bits would overflow time.Duration long before
	// the cap comparison; clamp the exponent instead.
	for i := 0; i < attempt && d < cfg.RetryCap; i++ {
		d <<= 1
	}
	if d > cfg.RetryCap {
		d = cfg.RetryCap
	}
	return d
}

// RetryDelay draws the jittered backoff before retransmission attempt k
// (0-based): BaseRetryDelay spread uniformly over ±RetryJitter×delay.
// All randomness comes from rng, so a seeded stream reproduces the
// exact retransmit schedule.
func RetryDelay(cfg Config, attempt int, rng *xrand.RNG) time.Duration {
	cfg = cfg.withDefaults()
	base := BaseRetryDelay(cfg, attempt)
	if cfg.RetryJitter == 0 || rng == nil {
		return base
	}
	u := 2*rng.Float64() - 1 // uniform in [-1, 1)
	d := time.Duration(float64(base) * (1 + cfg.RetryJitter*u))
	if d < 0 {
		d = 0
	}
	return d
}

// BreakerState is a link's health phase.
type BreakerState uint8

const (
	// BreakerClosed: link healthy, sends tracked normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: link failed repeatedly; tracked sends are rejected
	// (degraded to best-effort) until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe frame is in
	// flight. Its ack closes the breaker, its failure reopens it.
	BreakerHalfOpen
)

// String returns the state mnemonic.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Metrics is the transport's obs instrumentation. All fields may be
// nil (the obs API is nil-safe), so an unobserved endpoint pays only
// nil checks.
type Metrics struct {
	TxData      *obs.Counter
	TxAcks      *obs.Counter
	RxData      *obs.Counter
	RxAcks      *obs.Counter
	Retransmits *obs.Counter
	DupDrops    *obs.Counter
	Failures    *obs.Counter
	Opens       *obs.Counter
	Closes      *obs.Counter
	Probes      *obs.Counter
	Quarantines *obs.Counter
	ParseErrs   *obs.Counter
	// OpenLinks counts links currently open or half-open.
	OpenLinks *obs.Gauge
}

// NewMetrics registers the transport metric set on r (nil-safe).
func NewMetrics(r *obs.Registry) Metrics {
	return Metrics{
		TxData:      r.Counter("transport_tx_data_total", "data frames sent (first transmissions)"),
		TxAcks:      r.Counter("transport_tx_acks_total", "ack frames sent"),
		RxData:      r.Counter("transport_rx_data_total", "fresh data frames delivered up"),
		RxAcks:      r.Counter("transport_rx_acks_total", "ack frames received"),
		Retransmits: r.Counter("transport_retransmits_total", "data frame retransmissions"),
		DupDrops:    r.Counter("transport_dup_drops_total", "duplicate data frames suppressed"),
		Failures:    r.Counter("transport_send_failures_total", "sends abandoned after the retry budget"),
		Opens:       r.Counter("transport_breaker_opens_total", "circuit breakers opened"),
		Closes:      r.Counter("transport_breaker_closes_total", "circuit breakers closed"),
		Probes:      r.Counter("transport_breaker_probes_total", "half-open probe frames admitted"),
		Quarantines: r.Counter("transport_quarantines_total", "flapping links quarantined"),
		ParseErrs:   r.Counter("transport_parse_errors_total", "undecodable frames dropped"),
		OpenLinks:   r.Gauge("transport_open_links", "links currently open or half-open"),
	}
}

// pending is one unacked data frame awaiting retransmission or failure.
type pending struct {
	seq      uint32
	raw      []byte // full marshalled frame, owned by the endpoint
	attempts int    // retransmissions performed so far
	nextAt   time.Duration
}

// link is the per-peer ARQ and health state.
type link struct {
	peer    int
	nextSeq uint32
	// inflight maps seq → pending for tracked, unacked data frames.
	inflight map[uint32]*pending

	// Receive side: sliding duplicate-suppression window. rcvMask bit k
	// marks seq rcvHigh-k as seen; anything older than 64 behind is
	// assumed to be a duplicate.
	rcvInit  bool
	rcvEpoch uint32
	rcvHigh  uint32
	rcvMask  uint64

	// Health: consecutive failures, breaker phase, flap bookkeeping.
	fails       int
	state       BreakerState
	reopenAt    time.Duration // when an open breaker admits a probe
	probe       uint32        // seq of the in-flight half-open probe
	flapStart   time.Duration
	flapOpens   int
	quarantined bool // this open is a quarantine (flapping link)

	// Coalesced-ack accumulator (Config.AckDelay > 0): sequence numbers
	// awaiting acknowledgement toward this peer, the epoch they all
	// belong to, and the deadline set by the oldest of them.
	ackPend  []uint32
	ackEpoch uint32
	ackDue   time.Duration
}

// Endpoint is one node's reliability state machine. It is NOT
// goroutine-safe: the owner (a live host goroutine or the Lab) must
// serialize Send, HandleRaw, Tick, and Reboot, passing its own
// monotonic notion of now.
//
// Buffer ownership: the frame slice passed to the send callback is
// only valid for the duration of the call — carriers must copy if they
// retain (the same contract as internal/sim's packet arena; see
// docs/TRANSPORT.md). Likewise the payload passed to deliver aliases
// the raw datagram given to HandleRaw.
type Endpoint struct {
	cfg     Config
	local   int
	epoch   uint32
	rng     *xrand.RNG
	send    func(to int, frame []byte)
	deliver func(from int, payload []byte)
	m       Metrics

	links   map[int]*link
	scratch []byte // marshal buffer for acks and untracked sends
	ackBuf  []byte // range-payload scratch for coalesced acks
	peerBuf []int  // sorted-key scratch for Tick
	seqBuf  []uint32
}

// NewEndpoint builds an endpoint for node local. rng seeds the boot
// epoch and all jitter draws; send transmits a marshalled frame toward
// a peer; deliver hands a fresh payload up the stack. cfg is
// normalized with defaults (zero value = transport off; such an
// endpoint still works but callers should bypass it entirely).
func NewEndpoint(cfg Config, local int, rng *xrand.RNG, send func(to int, frame []byte), deliver func(from int, payload []byte)) *Endpoint {
	// Programmer error, same contract as live.Start's behavior check:
	// defaults must never paper over a config that Validate rejects.
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Endpoint{
		cfg:     cfg.withDefaults(),
		local:   local,
		rng:     rng,
		send:    send,
		deliver: deliver,
		links:   make(map[int]*link),
	}
	e.epoch = e.newEpoch()
	return e
}

// SetMetrics attaches obs instrumentation. Metrics never influence
// behavior, so the zero Metrics (all nil) is always safe.
func (e *Endpoint) SetMetrics(m Metrics) { e.m = m }

// Epoch returns the current boot incarnation identifier.
func (e *Endpoint) Epoch() uint32 { return e.epoch }

func (e *Endpoint) newEpoch() uint32 {
	// Epochs only need to differ between incarnations; a random draw
	// avoids persisting boot counters across crash/reboot.
	for {
		if ep := uint32(e.rng.Uint64()); ep != 0 && ep != e.epoch {
			return ep
		}
	}
}

func (e *Endpoint) link(peer int) *link {
	l, ok := e.links[peer]
	if !ok {
		l = &link{peer: peer, inflight: make(map[uint32]*pending)}
		e.links[peer] = l
	}
	return l
}

// BreakerState reports the health phase of the link toward peer.
func (e *Endpoint) BreakerState(peer int) BreakerState {
	if l, ok := e.links[peer]; ok {
		return l.state
	}
	return BreakerClosed
}

// Quarantined reports whether the link toward peer is currently exiled
// for flapping (no tracked sends or probes until the quarantine
// deadline passes and a probe succeeds).
func (e *Endpoint) Quarantined(peer int) bool {
	l, ok := e.links[peer]
	return ok && l.state == BreakerOpen && l.quarantined
}

// InFlight returns the number of tracked, unacked data frames across
// all links.
func (e *Endpoint) InFlight() int {
	n := 0
	for _, l := range e.links {
		n += len(l.inflight)
	}
	return n
}

// Send frames payload toward peer and transmits it. Under ARQ the
// frame is tracked for retransmission unless the link's breaker
// rejects it, in which case the frame still goes out once, best-effort
// (graceful degradation: an open breaker never silences a node, it
// only stops the transport from burning retries on a dead peer).
func (e *Endpoint) Send(to int, payload []byte, now time.Duration) {
	l := e.link(to)
	// Reverse traffic flushes coalesced acks first: the radio is about
	// to carry a frame to this peer anyway, so pending acks ride the
	// same burst instead of waiting out their delay.
	e.flushAcks(l, now)
	l.nextSeq++
	f := Frame{Kind: KindData, From: uint32(e.local), Epoch: e.epoch, Seq: l.nextSeq, Payload: payload}
	e.m.TxData.Inc()
	if e.cfg.ARQ && e.admit(l, now) {
		raw := f.Marshal()
		l.inflight[l.nextSeq] = &pending{
			seq:    l.nextSeq,
			raw:    raw,
			nextAt: now + RetryDelay(e.cfg, 0, e.rng),
		}
		if l.state == BreakerHalfOpen {
			l.probe = l.nextSeq
		}
		e.send(to, raw)
		return
	}
	e.scratch = f.AppendMarshal(e.scratch[:0])
	e.send(to, e.scratch)
}

// admit decides whether a tracked send may proceed on l, advancing the
// breaker open → half-open when the cooldown has elapsed.
func (e *Endpoint) admit(l *link, now time.Duration) bool {
	switch l.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < l.reopenAt {
			return false
		}
		l.state = BreakerHalfOpen
		l.quarantined = false
		l.probe = 0
		e.m.Probes.Inc()
		return true
	default: // BreakerHalfOpen
		// One probe at a time; everything else degrades to best-effort
		// until the probe resolves.
		return l.probe == 0
	}
}

// HandleRaw processes one inbound datagram (exactly one frame).
func (e *Endpoint) HandleRaw(raw []byte, now time.Duration) {
	f, err := ParseFrame(raw)
	if err != nil {
		e.m.ParseErrs.Inc()
		return
	}
	from := int(f.From)
	switch f.Kind {
	case KindData:
		l := e.link(from)
		fresh := l.accept(f.Epoch, f.Seq)
		if e.cfg.ARQ {
			if e.cfg.AckDelay > 0 {
				e.queueAck(l, f.Epoch, f.Seq, now)
			} else {
				ack := Frame{Kind: KindAck, From: uint32(e.local), Epoch: f.Epoch, Seq: f.Seq}
				e.scratch = ack.AppendMarshal(e.scratch[:0])
				e.m.TxAcks.Inc()
				e.send(from, e.scratch)
			}
		}
		if !fresh {
			e.m.DupDrops.Inc()
			return
		}
		e.m.RxData.Inc()
		e.deliver(from, f.Payload)
	case KindAck:
		e.m.RxAcks.Inc()
		if f.Epoch != e.epoch {
			return // addressed to a previous incarnation
		}
		e.ackOne(e.link(from), f.Seq, now)
	case KindAckBatch:
		e.m.RxAcks.Inc()
		if f.Epoch != e.epoch {
			return // addressed to a previous incarnation
		}
		if len(f.Payload)%AckRangeSize != 0 {
			e.m.ParseErrs.Inc()
			return
		}
		l := e.link(from)
		// Bound the expansion work per frame: a forged 65535-count range
		// must not turn one datagram into a 65535-iteration loop. Real
		// batches are AckMax seqs at most, far under the cap.
		budget := maxAckBatchSeqs
		for p := f.Payload; len(p) >= AckRangeSize; p = p[AckRangeSize:] {
			start := binary.BigEndian.Uint32(p)
			count := int(binary.BigEndian.Uint16(p[4:6]))
			for i := 0; i < count && budget > 0; i++ {
				budget--
				// start+i wraps mod 2^32, matching the encoder: a range
				// may span the sequence wraparound.
				e.ackOne(l, start+uint32(i), now)
			}
		}
	default:
		// Probes are a carrier concern; an endpoint ignores them.
	}
}

// maxAckBatchSeqs caps how many sequence numbers one KindAckBatch frame
// may acknowledge.
const maxAckBatchSeqs = 4096

// ackOne applies one acknowledged sequence number to l: the frame leaves
// the retransmit set and the link is proven alive, closing its breaker
// if it was open or probing. Idempotent, so replayed or overlapping acks
// are harmless.
func (e *Endpoint) ackOne(l *link, seq uint32, now time.Duration) {
	delete(l.inflight, seq)
	l.fails = 0
	if l.state != BreakerClosed {
		// Any ack proves the link is alive again — including acks
		// for best-effort frames sent while the breaker was open.
		l.state = BreakerClosed
		l.probe = 0
		e.m.Closes.Inc()
		e.m.OpenLinks.Dec()
		// Breaker state change: whatever acks we owe this peer go out
		// now, while the link is demonstrably usable.
		e.flushAcks(l, now)
	}
}

// queueAck records one coalesced acknowledgement toward l's peer,
// flushing on epoch change (acks echo the data epoch, so one batch
// cannot mix incarnations) and on the AckMax high-water mark. The first
// queued ack starts the AckDelay deadline clock; Tick and NextWake
// honor it.
func (e *Endpoint) queueAck(l *link, epoch, seq uint32, now time.Duration) {
	if len(l.ackPend) > 0 && l.ackEpoch != epoch {
		e.flushAcks(l, now)
	}
	if len(l.ackPend) == 0 {
		l.ackEpoch = epoch
		l.ackDue = now + e.cfg.AckDelay
	}
	l.ackPend = append(l.ackPend, seq)
	if len(l.ackPend) >= e.cfg.AckMax {
		e.flushAcks(l, now)
	}
}

// flushAcks drains l's pending coalesced acks as one KindAckBatch frame:
// sequence numbers are sorted in serial-number order (so runs that cross
// the uint32 wraparound still coalesce) and folded into (start, count)
// ranges. No-op when nothing is pending.
func (e *Endpoint) flushAcks(l *link, now time.Duration) {
	if len(l.ackPend) == 0 {
		return
	}
	sort.Slice(l.ackPend, func(i, j int) bool {
		return int32(l.ackPend[i]-l.ackPend[j]) < 0
	})
	e.ackBuf = e.ackBuf[:0]
	start, count := l.ackPend[0], uint32(1)
	emit := func() {
		e.ackBuf = binary.BigEndian.AppendUint32(e.ackBuf, start)
		e.ackBuf = binary.BigEndian.AppendUint16(e.ackBuf, uint16(count))
	}
	for _, s := range l.ackPend[1:] {
		if s == start+count-1 {
			continue // duplicate (retransmission acked twice)
		}
		if s == start+count && count < MaxPayload {
			count++
			continue
		}
		emit()
		start, count = s, 1
	}
	emit()
	f := Frame{Kind: KindAckBatch, From: uint32(e.local), Epoch: l.ackEpoch, Payload: e.ackBuf}
	e.scratch = f.AppendMarshal(e.scratch[:0])
	e.m.TxAcks.Inc()
	l.ackPend = l.ackPend[:0]
	e.send(l.peer, e.scratch)
}

// accept runs the duplicate-suppression window, returning true when
// (epoch, seq) has not been seen before on this link.
func (l *link) accept(epoch, seq uint32) bool {
	if !l.rcvInit || l.rcvEpoch != epoch {
		// First frame from this incarnation: reset the window.
		l.rcvInit = true
		l.rcvEpoch = epoch
		l.rcvHigh = seq
		l.rcvMask = 1
		return true
	}
	// Serial-number arithmetic (RFC 1982 style): compare through the
	// signed difference so the window keeps sliding across the uint32
	// wraparound. Without it, the first frame after seq 0xFFFFFFFF would
	// read as 2^32 "behind" the window head and every subsequent frame
	// on the link would be eaten as a duplicate until the next reboot
	// epoch.
	diff := int32(seq - l.rcvHigh)
	if diff > 0 {
		shift := uint32(diff)
		if shift >= 64 {
			l.rcvMask = 0
		} else {
			l.rcvMask <<= shift
		}
		l.rcvMask |= 1
		l.rcvHigh = seq
		return true
	}
	delta := uint32(-diff)
	if delta >= 64 {
		return false // too old to judge: assume duplicate
	}
	bit := uint64(1) << delta
	if l.rcvMask&bit != 0 {
		return false
	}
	l.rcvMask |= bit
	return true
}

// Tick retransmits due frames, ages out exhausted ones, and flushes
// coalesced acks whose delay has expired. Iteration is sorted by peer
// then seq so jitter draws happen in a deterministic order regardless of
// map layout.
func (e *Endpoint) Tick(now time.Duration) {
	if !e.cfg.ARQ {
		return
	}
	e.peerBuf = e.peerBuf[:0]
	for peer, l := range e.links {
		if len(l.inflight) > 0 || (len(l.ackPend) > 0 && l.ackDue <= now) {
			e.peerBuf = append(e.peerBuf, peer)
		}
	}
	sort.Ints(e.peerBuf)
	for _, peer := range e.peerBuf {
		l := e.links[peer]
		if len(l.ackPend) > 0 && l.ackDue <= now {
			e.flushAcks(l, now)
		}
		e.seqBuf = e.seqBuf[:0]
		for seq := range l.inflight {
			e.seqBuf = append(e.seqBuf, seq)
		}
		sort.Slice(e.seqBuf, func(i, j int) bool { return e.seqBuf[i] < e.seqBuf[j] })
		for _, seq := range e.seqBuf {
			p := l.inflight[seq]
			if p.nextAt > now {
				continue
			}
			if p.attempts >= e.cfg.MaxRetries {
				delete(l.inflight, seq)
				e.m.Failures.Inc()
				e.fail(l, seq, now)
				continue
			}
			p.attempts++
			p.nextAt = now + RetryDelay(e.cfg, p.attempts, e.rng)
			e.m.Retransmits.Inc()
			e.send(peer, p.raw)
		}
	}
}

// fail records an exhausted send on l and runs the breaker transition.
func (e *Endpoint) fail(l *link, seq uint32, now time.Duration) {
	if l.state == BreakerHalfOpen && seq == l.probe {
		// The probe itself died: straight back to open.
		e.open(l, now)
		return
	}
	l.fails++
	if l.state == BreakerClosed && e.cfg.BreakerThreshold > 0 && l.fails >= e.cfg.BreakerThreshold {
		e.open(l, now)
	}
}

// open transitions l to BreakerOpen, counting flaps and quarantining a
// link that keeps bouncing open within the flap window.
func (e *Endpoint) open(l *link, now time.Duration) {
	// Breaker state change: flush whatever acks we owe the peer before
	// the link is written off, so our outbound silence does not also
	// starve the peer's retransmit state of acknowledgements.
	e.flushAcks(l, now)
	if l.state == BreakerClosed {
		e.m.OpenLinks.Inc()
	}
	l.state = BreakerOpen
	l.fails = 0
	l.probe = 0
	e.m.Opens.Inc()
	if now-l.flapStart > e.cfg.FlapWindow {
		l.flapStart = now
		l.flapOpens = 0
	}
	l.flapOpens++
	if e.cfg.FlapLimit > 0 && l.flapOpens >= e.cfg.FlapLimit {
		l.reopenAt = now + e.cfg.Quarantine
		l.flapOpens = 0
		l.flapStart = now + e.cfg.Quarantine
		l.quarantined = true
		e.m.Quarantines.Inc()
		return
	}
	l.reopenAt = now + e.cfg.BreakerCooldown
}

// NextWake returns the earliest deadline across all links — retransmit
// timers and coalesced-ack flushes — or false when neither is pending.
func (e *Endpoint) NextWake() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, l := range e.links {
		for _, p := range l.inflight {
			if !found || p.nextAt < min {
				min = p.nextAt
				found = true
			}
		}
		if len(l.ackPend) > 0 && (!found || l.ackDue < min) {
			min = l.ackDue
			found = true
		}
	}
	return min, found
}

// Reboot resets the endpoint to a fresh incarnation: a new epoch,
// empty links, no in-flight state. Receivers notice the epoch change
// and reset their windows; acks for the old epoch are ignored.
func (e *Endpoint) Reboot() {
	open := 0
	for _, l := range e.links {
		if l.state != BreakerClosed {
			open++
		}
	}
	e.m.OpenLinks.Add(-int64(open))
	e.epoch = e.newEpoch()
	e.links = make(map[int]*link)
}
