package transport

import (
	"bytes"
	"testing"
)

// FuzzTransportFrame checks that the frame header parser never panics,
// and that parse→marshal is the identity on every accepted datagram —
// the property that caught internal/wire's trailing-bytes laxity.
func FuzzTransportFrame(f *testing.F) {
	f.Add(Frame{Kind: KindData, From: 3, Epoch: 0xdeadbeef, Seq: 41, Payload: []byte("hello")}.Marshal())
	f.Add(Frame{Kind: KindAck, From: 0, Epoch: 1, Seq: 1}.Marshal())
	f.Add(Frame{Kind: KindProbe, From: 9}.Marshal())
	f.Add(Frame{Kind: KindProbeAck, From: 2}.Marshal())
	f.Add(Frame{Kind: KindAckBatch, From: 4, Epoch: 7,
		Payload: []byte{0xff, 0xff, 0xff, 0xfe, 0x00, 0x04}}.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := ParseFrame(raw)
		if err != nil {
			return
		}
		re := fr.Marshal()
		if !bytes.Equal(re, raw) {
			t.Fatalf("parse→marshal not identity:\n in  %x\n out %x", raw, re)
		}
		fr2, err := ParseFrame(re)
		if err != nil {
			t.Fatalf("re-parse of marshalled frame failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.From != fr.From || fr2.Epoch != fr.Epoch ||
			fr2.Seq != fr.Seq || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-parse disagrees: %+v vs %+v", fr2, fr)
		}
	})
}

func TestParseFrameRejectsTrailingBytes(t *testing.T) {
	raw := Frame{Kind: KindData, From: 1, Epoch: 2, Seq: 3, Payload: []byte("p")}.Marshal()
	if _, err := ParseFrame(append(raw, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := ParseFrame(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := ParseFrame(nil); err == nil {
		t.Fatal("empty datagram accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 99
	if _, err := ParseFrame(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	bad = append([]byte{}, raw...)
	bad[1] = 0
	if _, err := ParseFrame(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
