package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the transport frame format version byte.
const Version = 1

// HeaderSize is the fixed transport frame header length in bytes:
// version, kind, from, epoch, seq, payload length.
const HeaderSize = 1 + 1 + 4 + 4 + 4 + 2

// MaxPayload is the largest payload a transport frame can carry.
const MaxPayload = 1<<16 - 1

// Kind tags a transport frame.
type Kind byte

// Frame kinds. Values are stable wire constants.
const (
	// KindData carries one radio packet (an opaque protocol frame).
	KindData Kind = 1
	// KindAck acknowledges one data frame, echoing its epoch and seq.
	KindAck Kind = 2
	// KindProbe is a carrier-level reachability ping (peer discovery
	// barrier); it never reaches an Endpoint.
	KindProbe Kind = 3
	// KindProbeAck answers a probe.
	KindProbeAck Kind = 4
	// KindAckBatch acknowledges many data frames at once: the payload is
	// a sequence of (start seq u32, count u16) ranges, all under the
	// epoch in the header. Seq in the header is unused (zero). Emitted
	// only when Config.AckDelay enables coalescing; ranges may span the
	// uint32 sequence wraparound (start+i is computed mod 2^32).
	KindAckBatch Kind = 5
)

// AckRangeSize is the encoded length of one coalesced-ack range.
const AckRangeSize = 4 + 2

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	case KindProbe:
		return "PROBE"
	case KindProbeAck:
		return "PROBE-ACK"
	case KindAckBatch:
		return "ACK-BATCH"
	default:
		return fmt.Sprintf("KIND(%d)", byte(k))
	}
}

// Frame is one transport datagram: the unit the reliability layer moves
// over a Carrier. Payloads are opaque to the transport (they are the
// protocol's own sealed wire frames; all authentication is end to end).
type Frame struct {
	Kind Kind
	// From is the sending node's graph index.
	From uint32
	// Epoch identifies the sender's boot incarnation. A receiver resets
	// its duplicate-suppression window when a peer's epoch changes, so
	// sequence numbers may restart after a crash/reboot without
	// blackholing the fresh stream. Acks echo the data frame's epoch so
	// a rebooted sender ignores acks addressed to its previous life.
	Epoch uint32
	// Seq is the per-link sequence number (data) or the acknowledged
	// sequence number (ack). Zero is never assigned to a data frame.
	Seq uint32
	// Payload is the carried radio packet (data frames only).
	Payload []byte
}

// ErrTruncated is returned when a frame is shorter than its header or
// declared payload requires.
var ErrTruncated = errors.New("transport: truncated frame")

// ErrVersion is returned for an unknown version byte.
var ErrVersion = errors.New("transport: unknown frame version")

// ErrBadKind is returned for an unknown frame kind.
var ErrBadKind = errors.New("transport: unknown frame kind")

// AppendMarshal appends the frame's encoding to dst and returns the
// extended slice; with pre-sized scratch the call is allocation-free.
func (f Frame) AppendMarshal(dst []byte) []byte {
	if len(f.Payload) > MaxPayload {
		panic("transport: frame payload too long")
	}
	dst = append(dst, Version, byte(f.Kind))
	dst = binary.BigEndian.AppendUint32(dst, f.From)
	dst = binary.BigEndian.AppendUint32(dst, f.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, f.Seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Payload)))
	return append(dst, f.Payload...)
}

// Marshal encodes the frame into a fresh buffer.
func (f Frame) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, HeaderSize+len(f.Payload)))
}

// ParseFrame decodes a transport frame. The returned payload aliases
// raw, so it is only as long-lived as the datagram buffer. A datagram is
// exactly one frame: trailing bytes are rejected, so parse-then-marshal
// is the identity on every accepted input (the same laxity lesson
// FuzzParseFrame taught internal/wire).
func ParseFrame(raw []byte) (Frame, error) {
	var f Frame
	if len(raw) < HeaderSize {
		return f, ErrTruncated
	}
	if raw[0] != Version {
		return f, ErrVersion
	}
	f.Kind = Kind(raw[1])
	if f.Kind < KindData || f.Kind > KindAckBatch {
		return f, ErrBadKind
	}
	f.From = binary.BigEndian.Uint32(raw[2:6])
	f.Epoch = binary.BigEndian.Uint32(raw[6:10])
	f.Seq = binary.BigEndian.Uint32(raw[10:14])
	n := int(binary.BigEndian.Uint16(raw[14:16]))
	if len(raw) != HeaderSize+n {
		if len(raw) < HeaderSize+n {
			return f, ErrTruncated
		}
		return f, fmt.Errorf("transport: %d trailing bytes after frame payload", len(raw)-HeaderSize-n)
	}
	if n > 0 {
		f.Payload = raw[HeaderSize : HeaderSize+n]
	}
	return f, nil
}
