package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Carrier moves marshalled transport frames between nodes. Inbound
// frames surface on a channel so the consumer can select against its
// own shutdown signal. Send must not retain the frame slice past the
// call (endpoints reuse marshal buffers).
type Carrier interface {
	Send(to int, frame []byte)
	// Inbound yields received frames. The channel is closed by Close.
	Inbound() <-chan Inbound
}

// Inbound is one frame received by a carrier. From is the peer's node
// index as authenticated by the carrier (for UDP: the socket the frame
// arrived from); endpoints additionally read the From field inside the
// frame, which for a well-behaved peer agrees.
type Inbound struct {
	From  int
	Frame []byte
}

// UDP is a Carrier over a real UDP socket, turning N OS processes into
// one cluster network. It is loopback/LAN oriented: no encryption at
// this layer (the protocol's own frames are sealed end to end) and
// peer identity is the source address registered via AddPeer.
type UDP struct {
	local int
	conn  *net.UDPConn

	mu    sync.Mutex
	peers map[int]*net.UDPAddr // node index → address
	addrs map[string]int       // address string → node index
	ready map[int]bool         // peers that answered a probe
	drop  func(peer int) bool  // data-plane partition filter (may be nil)

	inbound chan Inbound
	wg      sync.WaitGroup
	closed  atomic.Bool

	// Dropped counts inbound frames discarded because the inbound
	// channel was full (consumer too slow); Errs counts socket write
	// errors. Both are diagnostics, not control flow.
	Dropped atomic.Uint64
	Errs    atomic.Uint64
}

// ListenUDP opens a UDP carrier for node local on listen (e.g.
// "127.0.0.1:9001"). Register peers with AddPeer, then optionally
// block on WaitReady before starting protocol traffic.
func ListenUDP(local int, listen string) (*UDP, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", listen, err)
	}
	u := &UDP{
		local:   local,
		conn:    conn,
		peers:   make(map[int]*net.UDPAddr),
		addrs:   make(map[string]int),
		ready:   make(map[int]bool),
		inbound: make(chan Inbound, 4096),
	}
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// Addr returns the bound local address (useful with ":0" listens).
func (u *UDP) Addr() *net.UDPAddr { return u.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers a peer's node index and UDP address.
func (u *UDP) AddPeer(id int, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %d %q: %w", id, addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = ua
	u.addrs[ua.String()] = id
	return nil
}

// Inbound implements Carrier.
func (u *UDP) Inbound() <-chan Inbound { return u.inbound }

// SetDrop installs (or, with nil, clears) a data-plane partition filter:
// while fn(peer) returns true, protocol frames to and from that peer are
// discarded at this carrier. Probe traffic is deliberately exempt — the
// WaitReady barrier stays usable — so the filter models a partition of
// the deployed network, not an unreachable address. This is the
// injection seam internal/fleet's fault API drives; it may be called
// concurrently with Send and the read loop.
func (u *UDP) SetDrop(fn func(peer int) bool) {
	u.mu.Lock()
	u.drop = fn
	u.mu.Unlock()
}

// dropped consults the partition filter.
func (u *UDP) dropped(peer int) bool {
	u.mu.Lock()
	fn := u.drop
	u.mu.Unlock()
	return fn != nil && fn(peer)
}

// Send implements Carrier. Unknown peers and socket errors are counted
// and dropped: UDP is lossy by contract and the ARQ layer above owns
// recovery.
func (u *UDP) Send(to int, frame []byte) {
	if u.closed.Load() || u.dropped(to) {
		return
	}
	u.mu.Lock()
	addr := u.peers[to]
	u.mu.Unlock()
	if addr == nil {
		u.Errs.Add(1)
		return
	}
	if _, err := u.conn.WriteToUDP(frame, addr); err != nil {
		u.Errs.Add(1)
	}
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, HeaderSize+MaxPayload)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			if u.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		u.mu.Lock()
		id, known := u.addrs[from.String()]
		u.mu.Unlock()
		if !known || n < HeaderSize {
			continue
		}
		// Probe traffic terminates here: it is the WaitReady barrier,
		// not protocol data.
		switch Kind(buf[1]) {
		case KindProbe:
			ack := Frame{Kind: KindProbeAck, From: uint32(u.local)}
			if _, err := u.conn.WriteToUDP(ack.Marshal(), from); err != nil {
				u.Errs.Add(1)
			}
			continue
		case KindProbeAck:
			u.mu.Lock()
			u.ready[id] = true
			u.mu.Unlock()
			continue
		}
		if u.dropped(id) {
			continue
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		select {
		case u.inbound <- Inbound{From: id, Frame: frame}:
		default:
			u.Dropped.Add(1)
		}
	}
}

// WaitReady probes every registered peer until each has answered (so
// both directions of every link are verified) or the timeout expires.
// It is the start-of-run barrier for multi-process deployments: peers
// boot at slightly different times and early protocol frames must not
// vanish into unbound sockets.
func (u *UDP) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	probe := Frame{Kind: KindProbe, From: uint32(u.local)}.Marshal()
	for {
		missing := u.missingPeers()
		if len(missing) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peers unreachable after %v: %v", timeout, missing)
		}
		u.mu.Lock()
		for _, id := range missing {
			if addr := u.peers[id]; addr != nil {
				if _, err := u.conn.WriteToUDP(probe, addr); err != nil {
					u.Errs.Add(1)
				}
			}
		}
		u.mu.Unlock()
		time.Sleep(100 * time.Millisecond)
	}
}

func (u *UDP) missingPeers() []int {
	u.mu.Lock()
	defer u.mu.Unlock()
	var missing []int
	for id := range u.peers {
		if !u.ready[id] {
			missing = append(missing, id)
		}
	}
	sort.Ints(missing)
	return missing
}

// Close shuts the socket, stops the read loop, and closes the inbound
// channel. Safe to call once; Send becomes a no-op afterwards.
func (u *UDP) Close() error {
	if !u.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := u.conn.Close()
	u.wg.Wait()
	close(u.inbound)
	return err
}
