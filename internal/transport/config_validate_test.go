package transport

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidate pins the raw-config contract: negative durations
// and counts are rejected with the field named, while the zero value,
// sensible configs, and the documented "negative disables" knobs pass.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"zero value", Config{}, ""},
		{"arq defaults", Config{ARQ: true}, ""},
		{"coalescing", Config{ARQ: true, AckDelay: 4 * time.Millisecond}, ""},
		{"negative jitter disables", Config{ARQ: true, RetryJitter: -1}, ""},
		{"negative breaker disables", Config{ARQ: true, BreakerThreshold: -1}, ""},
		{"negative flap disables", Config{ARQ: true, FlapLimit: -1}, ""},
		{"negative retry base", Config{ARQ: true, RetryBase: -time.Millisecond}, "RetryBase must not be negative"},
		{"negative retry cap", Config{ARQ: true, RetryCap: -time.Second}, "RetryCap must not be negative"},
		{"negative cooldown", Config{ARQ: true, BreakerCooldown: -time.Second}, "BreakerCooldown must not be negative"},
		{"negative flap window", Config{ARQ: true, FlapWindow: -time.Second}, "FlapWindow must not be negative"},
		{"negative quarantine", Config{ARQ: true, Quarantine: -time.Second}, "Quarantine must not be negative"},
		{"negative ack delay", Config{ARQ: true, AckDelay: -time.Millisecond}, "AckDelay must not be negative"},
		{"negative max retries", Config{ARQ: true, MaxRetries: -1}, "MaxRetries must not be negative"},
		{"negative ack max", Config{ARQ: true, AckMax: -1}, "AckMax must not be negative"},
		{"ack delay without arq", Config{Framed: true, AckDelay: time.Millisecond}, "AckDelay requires ARQ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewEndpointRejectsInvalidConfig pins the seam: an endpoint must
// never be built around a config Validate rejects.
func TestNewEndpointRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEndpoint accepted a negative RetryBase")
		}
	}()
	NewEndpoint(Config{ARQ: true, RetryBase: -time.Millisecond}, 0, nil, nil, nil)
}
