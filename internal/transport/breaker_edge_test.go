package transport

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// quarantineLink drives a fresh link into its first quarantine: two
// exhausted sends trip the breaker, then probe failures rack up opens
// until the flap limit exiles the link. Returns the advanced clock.
func quarantineLink(t *testing.T, e *Endpoint, peer int, cfg Config, now time.Duration) time.Duration {
	t.Helper()
	for i := 0; i < 2; i++ {
		e.Send(peer, []byte("x"), now)
		now = drainRetries(e, now)
	}
	for open := 1; open < cfg.FlapLimit; open++ {
		now += cfg.BreakerCooldown + time.Millisecond
		e.Send(peer, []byte("probe"), now)
		now = drainRetries(e, now)
	}
	if !e.Quarantined(peer) {
		t.Fatalf("setup: link not quarantined (state=%v)", e.BreakerState(peer))
	}
	return now
}

// TestBreakerPostQuarantineProbeLoss covers the probe that is admitted
// when a quarantine elapses and then dies: the link must fall back to
// plain open — one lost probe is not a fresh flapping streak — and only
// a renewed run of failed probes may quarantine it again.
func TestBreakerPostQuarantineProbeLoss(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	out := &sink{}
	cfg := testCfg()
	e := NewEndpoint(cfg, 0, xrand.New(11), out.send, func(int, []byte) {})
	e.SetMetrics(m)
	const peer = 9
	now := quarantineLink(t, e, peer, cfg, 0)

	// Quarantine elapses; the next send is the half-open probe...
	now += cfg.Quarantine + time.Millisecond
	e.Send(peer, []byte("probe"), now)
	if got := e.BreakerState(peer); got != BreakerHalfOpen {
		t.Fatalf("post-quarantine state = %v, want half-open", got)
	}
	// ...and it is lost.
	now = drainRetries(e, now)
	if got := e.BreakerState(peer); got != BreakerOpen {
		t.Fatalf("after lost post-quarantine probe: state = %v, want open", got)
	}
	if e.Quarantined(peer) {
		t.Fatal("a single lost probe after quarantine must not re-quarantine the link")
	}
	if v := m.Quarantines.Value(); v != 1 {
		t.Fatalf("quarantines = %d, want 1 (the original)", v)
	}

	// The flap counter restarted at the quarantine: the lost probe was
	// open #1, and only a full renewed run of FlapLimit opens exiles the
	// link again.
	for open := 2; open <= cfg.FlapLimit; open++ {
		if e.Quarantined(peer) {
			t.Fatalf("re-quarantined after only %d post-quarantine opens", open-1)
		}
		now += cfg.BreakerCooldown + time.Millisecond
		e.Send(peer, []byte("probe"), now)
		now = drainRetries(e, now)
	}
	if !e.Quarantined(peer) {
		t.Fatalf("after %d failed post-quarantine probes: not re-quarantined (state=%v)",
			cfg.FlapLimit, e.BreakerState(peer))
	}
	if v := m.Quarantines.Value(); v != 2 {
		t.Fatalf("quarantines = %d, want 2", v)
	}

	// Second quarantine over, probe acked: full recovery is still
	// reachable after repeated exile.
	now += cfg.Quarantine + time.Millisecond
	e.Send(peer, []byte("probe"), now)
	e.HandleRaw(ackFor(peer, out.last()), now)
	if got := e.BreakerState(peer); got != BreakerClosed || e.Quarantined(peer) {
		t.Fatalf("recovery after second quarantine: state = %v, quarantined = %v",
			got, e.Quarantined(peer))
	}
}

// TestBreakerQuarantineAdmitsNothingMidway re-checks the exile contract
// at the exact boundary: one tick before the quarantine deadline a send
// stays best-effort, at the deadline it becomes the probe.
func TestBreakerQuarantineBoundary(t *testing.T) {
	out := &sink{}
	cfg := testCfg()
	e := NewEndpoint(cfg, 0, xrand.New(12), out.send, func(int, []byte) {})
	const peer = 4
	now := quarantineLink(t, e, peer, cfg, 0)

	e.Send(peer, []byte("early"), now+cfg.Quarantine-time.Millisecond)
	if e.InFlight() != 0 || !e.Quarantined(peer) {
		t.Fatal("send admitted one tick before the quarantine deadline")
	}
	e.Send(peer, []byte("probe"), now+cfg.Quarantine)
	if got := e.BreakerState(peer); got != BreakerHalfOpen || e.InFlight() != 1 {
		t.Fatalf("send at the deadline: state = %v, inflight = %d; want half-open probe",
			got, e.InFlight())
	}
}

// TestDuplicateWindowSequenceWraparound exercises the receive-side
// duplicate-suppression window across the uint32 sequence wraparound:
// the window head must keep sliding 0xFFFFFFFF → 0, duplicates must be
// caught on both sides of the boundary, and far-stale sequence numbers
// must still read as old (not as 2^32 ahead).
func TestDuplicateWindowSequenceWraparound(t *testing.T) {
	l := &link{}
	const epoch = 1
	near := uint32(0xFFFFFFFD) // three before wrap

	if !l.accept(epoch, near) {
		t.Fatal("first frame rejected")
	}
	// March straight across the boundary: ...FFFE, FFFF, 0, 1, 2.
	for _, seq := range []uint32{0xFFFFFFFE, 0xFFFFFFFF, 0, 1, 2} {
		if !l.accept(epoch, seq) {
			t.Fatalf("in-order seq %#x rejected at the wraparound", seq)
		}
	}
	// Everything seen so far is a duplicate — including the pre-wrap
	// sequence numbers now behind a post-wrap window head.
	for _, seq := range []uint32{0xFFFFFFFD, 0xFFFFFFFE, 0xFFFFFFFF, 0, 1, 2} {
		if l.accept(epoch, seq) {
			t.Fatalf("duplicate seq %#x accepted across the wraparound", seq)
		}
	}
	// A gap that jumps the boundary: head 2 → 40 skips 3..39; the
	// skipped ones (some pre-computed around the wrap region) arrive
	// late and must be accepted exactly once.
	if !l.accept(epoch, 40) {
		t.Fatal("forward jump over the boundary region rejected")
	}
	for _, late := range []uint32{3, 39} {
		if !l.accept(epoch, late) {
			t.Fatalf("late seq %d inside the window rejected", late)
		}
		if l.accept(epoch, late) {
			t.Fatalf("late seq %d accepted twice", late)
		}
	}
	// Beyond the 64-wide window the receiver cannot judge: assume
	// duplicate. Head is 40, so 0xFFFFFFFD is 67 behind (through the
	// wrap) and 0xFFFFFFE8 is exactly 64 behind.
	head := uint32(40)
	for _, stale := range []uint32{0xFFFFFFFD, head - 64} {
		if l.accept(epoch, stale) {
			t.Fatalf("stale seq %#x (>= window width behind) accepted", stale)
		}
	}
	// A jump of 64+ wipes the mask but the new head is accepted and
	// still dedups.
	if !l.accept(epoch, 40+200) {
		t.Fatal("large forward jump rejected")
	}
	if l.accept(epoch, 40+200) {
		t.Fatal("head duplicate accepted after large jump")
	}
}

// TestDuplicateWindowWraparoundViaEndpoint runs the same boundary
// through the full endpoint path (HandleRaw + metrics) to pin the
// DupDrops accounting at the wrap.
func TestDuplicateWindowWraparoundViaEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	var delivered int
	e := NewEndpoint(testCfg(), 0, xrand.New(13), func(int, []byte) {},
		func(int, []byte) { delivered++ })
	e.SetMetrics(m)
	const peer = 6
	data := func(seq uint32) []byte {
		return Frame{Kind: KindData, From: peer, Epoch: 77, Seq: seq, Payload: []byte("r")}.Marshal()
	}
	for _, seq := range []uint32{0xFFFFFFFF, 0, 1} {
		e.HandleRaw(data(seq), 0)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d in-order frames across the wrap, want 3", delivered)
	}
	// Retransmissions of all three arrive (the sender never saw our
	// acks): every one must be eaten, none re-delivered.
	for _, seq := range []uint32{0xFFFFFFFF, 0, 1} {
		e.HandleRaw(data(seq), 0)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d after duplicate retransmissions, want still 3", delivered)
	}
	if v := m.DupDrops.Value(); v != 3 {
		t.Fatalf("dup drops = %d, want 3", v)
	}
}
