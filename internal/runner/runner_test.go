package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if want < 1 {
		want = 1
	}
	for _, n := range []int{0, -5} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS=%d", n, got, want)
		}
	}
}

func TestNestedWorkersResolution(t *testing.T) {
	cases := []struct {
		workers, inner, want int
	}{
		{8, 1, 8},  // inner <= 1 passes through
		{8, 0, 8},  // unsharded
		{8, -3, 8}, // nonsense inner treated as unsharded
		{8, 2, 4},  // budget divided by inner
		{8, 3, 2},  // rounded down
		{8, 4, 2},
		{2, 4, 1}, // never below one outer worker
		{1, 16, 1},
		{3, 2, 1},
	}
	for _, c := range cases {
		if got := NestedWorkers(c.workers, c.inner); got != c.want {
			t.Errorf("NestedWorkers(%d, %d) = %d, want %d", c.workers, c.inner, got, c.want)
		}
	}
	// workers <= 0 resolves through Workers first, then divides.
	flat := Workers(0)
	want := flat / 4
	if want < 1 {
		want = 1
	}
	if got := NestedWorkers(0, 4); got != want {
		t.Errorf("NestedWorkers(0, 4) = %d, want %d (GOMAXPROCS=%d / 4)", got, want, flat)
	}
	if got := NestedWorkers(0, 1); got != flat {
		t.Errorf("NestedWorkers(0, 1) = %d, want %d", got, flat)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	want := []error{errors.New("e3"), errors.New("e7")}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, want[0]
			case 7:
				return 0, want[1]
			}
			return i, nil
		})
		if !errors.Is(err, want[0]) {
			t.Fatalf("workers=%d: got %v, want error of lowest failing index", workers, err)
		}
	}
}

func TestMapSerialShortCircuits(t *testing.T) {
	calls := 0
	_, err := Map(1, 10, func(i int) (int, error) {
		calls++
		if i == 2 {
			return 0, fmt.Errorf("stop")
		}
		return i, nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("serial path ran %d calls (err=%v); want short-circuit after 3", calls, err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(workers, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestGridShape(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Grid(workers, 3, 5, func(point, trial int) (string, error) {
			return fmt.Sprintf("%d/%d", point, trial), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 {
			t.Fatalf("points: %d", len(out))
		}
		for p := range out {
			if len(out[p]) != 5 {
				t.Fatalf("trials at point %d: %d", p, len(out[p]))
			}
			for tr := range out[p] {
				if want := fmt.Sprintf("%d/%d", p, tr); out[p][tr] != want {
					t.Fatalf("out[%d][%d] = %q", p, tr, out[p][tr])
				}
			}
		}
	}
}

func TestGridEmpty(t *testing.T) {
	if out, err := Grid(4, 0, 5, func(p, tr int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("zero points: %v, %v", out, err)
	}
	if out, err := Grid(4, 5, 0, func(p, tr int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("zero trials: %v, %v", out, err)
	}
}

// TestInstrument attaches pool metrics, runs a parallel Map, and checks
// the accounting: one task per index, full histograms, and an idle busy
// gauge afterward. Results must match the uninstrumented run exactly.
func TestInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)
	const n = 37
	got, err := Map(4, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	snap := reg.Snapshot()
	if tasks := snap["runner_tasks_total"].(uint64); tasks != n {
		t.Fatalf("runner_tasks_total = %d, want %d", tasks, n)
	}
	if busy := snap["runner_workers_busy"].(int64); busy != 0 {
		t.Fatalf("runner_workers_busy = %d after Map returned", busy)
	}
	for _, name := range []string{"runner_queue_wait_seconds", "runner_task_seconds"} {
		h := snap[name].(obs.HistogramSnapshot)
		if h.Count != n {
			t.Fatalf("%s count = %d, want %d", name, h.Count, n)
		}
	}
}

// TestInstrumentDetach: Instrument(nil) restores the bare path.
func TestInstrumentDetach(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	Instrument(nil)
	if _, err := Map(2, 5, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if tasks := reg.Snapshot()["runner_tasks_total"].(uint64); tasks != 0 {
		t.Fatalf("detached pool still counted %d tasks", tasks)
	}
}
