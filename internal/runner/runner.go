// Package runner executes independent simulation trials on a bounded
// worker pool while keeping results deterministic.
//
// Every experiment in this repository averages Options.Trials independent
// deployments per data point. Each trial is a pure function of its derived
// seed (see xrand.TrialSeed), so trials are embarrassingly parallel: the
// runner fans them out over a fixed number of goroutines and hands the
// results back in index order. Because the merge step consumes results in
// exactly the order the serial loops would have produced them, the final
// output is bit-identical to a serial run regardless of worker count or
// goroutine scheduling.
//
// The simulation engine itself (internal/sim) is single-threaded per run;
// parallelism lives strictly at the trial granularity, one engine per
// worker at a time.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// poolMetrics is the process-wide pool instrumentation installed by
// Instrument. Loaded once per Map call; nil means observability off and
// the hot loop takes the exact uninstrumented path.
type poolMetrics struct {
	tasks     *obs.Counter
	busy      *obs.Gauge
	queueWait *obs.Histogram
	taskTime  *obs.Histogram
}

var met atomic.Pointer[poolMetrics]

// Instrument attaches pool metrics (task counts, per-worker queue wait,
// busy-worker utilization, task durations) to r. Pass nil to detach.
// The wall-clock timings feed only metrics — trial results and their
// merge order stay byte-identical.
func Instrument(r *obs.Registry) {
	if r == nil {
		met.Store(nil)
		return
	}
	met.Store(&poolMetrics{
		tasks:     r.Counter("runner_tasks_total", "trials executed by the worker pool"),
		busy:      r.Gauge("runner_workers_busy", "workers currently executing a trial"),
		queueWait: r.Histogram("runner_queue_wait_seconds", "wall time from pool start to a task being claimed", nil),
		taskTime:  r.Histogram("runner_task_seconds", "wall time per trial", nil),
	})
}

// Workers resolves a worker-count option to a concrete pool size: values
// greater than zero are used as given; zero or negative means one worker
// per available CPU (GOMAXPROCS). The result is always at least 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// NestedWorkers resolves the outer (trial-pool) worker count when each
// trial itself runs `inner` goroutines — the sharded engine's
// trials-times-shards nesting. The total goroutine budget stays at the
// resolved flat count: inner <= 1 passes workers through unchanged,
// otherwise the resolved count is divided by inner (at least 1), so
// -workers keeps meaning "total concurrency" whether or not trials are
// sharded. Like Workers, the result is always at least 1.
func NestedWorkers(workers, inner int) int {
	w := Workers(workers)
	if inner <= 1 {
		return w
	}
	if w = w / inner; w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on at most workers concurrent
// goroutines and returns the n results in index order.
//
// workers is resolved through Workers; a resolved count of 1 runs every
// call serially in the calling goroutine, short-circuiting on the first
// error exactly like a plain loop — that is the -workers=1 escape hatch.
// With more than one worker, indices are claimed from an atomic counter;
// if any calls fail, Map still waits for all workers and then returns the
// error of the lowest failing index, so the reported error does not
// depend on scheduling.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	m := met.Load()
	run := fn
	if m != nil {
		start := time.Now()
		run = func(i int) (T, error) {
			m.queueWait.Observe(time.Since(start).Seconds())
			m.busy.Inc()
			t0 := time.Now()
			v, err := fn(i)
			m.taskTime.Observe(time.Since(t0).Seconds())
			m.busy.Dec()
			m.tasks.Inc()
			return v, err
		}
	}
	out := make([]T, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Grid runs fn(point, trial) for every cell of a points x trials grid on
// the Map pool and returns results indexed [point][trial]. Cells are
// flattened trial-major (cell = point*trials + trial), matching the
// nesting order of the serial experiment loops, so consuming the result
// with two nested loops reproduces the serial observation order exactly.
func Grid[T any](workers, points, trials int, fn func(point, trial int) (T, error)) ([][]T, error) {
	if points <= 0 || trials <= 0 {
		return nil, nil
	}
	flat, err := Map(workers, points*trials, func(i int) (T, error) {
		return fn(i/trials, i%trials)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, points)
	for p := 0; p < points; p++ {
		out[p] = flat[p*trials : (p+1)*trials : (p+1)*trials]
	}
	return out, nil
}
