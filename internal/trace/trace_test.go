package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestPhasedValidation(t *testing.T) {
	if _, err := NewPhased([]string{"a"}, []time.Duration{time.Second}); err == nil {
		t.Fatal("mismatched names accepted")
	}
	if _, err := NewPhased([]string{"a", "b", "c"},
		[]time.Duration{2 * time.Second, time.Second}); err == nil {
		t.Fatal("non-increasing boundaries accepted")
	}
}

func TestRecordCollapsesBroadcasts(t *testing.T) {
	r := New()
	pkt := []byte{byte(wire.THello), 0, 0, 0, 0}
	// One broadcast from node 3 reaching four neighbors.
	for to := uint32(10); to < 14; to++ {
		r.record(sim.TraceEvent{At: time.Millisecond, From: 3, To: to, Size: len(pkt), Pkt: pkt})
	}
	// A second broadcast later.
	r.record(sim.TraceEvent{At: 2 * time.Millisecond, From: 3, To: 10, Size: len(pkt), Pkt: pkt})
	c := r.Total()[wire.THello]
	if c.Transmissions != 2 {
		t.Fatalf("transmissions = %d, want 2", c.Transmissions)
	}
	if c.Deliveries != 5 {
		t.Fatalf("deliveries = %d, want 5", c.Deliveries)
	}
	if c.Bytes != int64(2*len(pkt)) {
		t.Fatalf("bytes = %d", c.Bytes)
	}
}

func TestLostCounted(t *testing.T) {
	r := New()
	pkt := []byte{byte(wire.TData)}
	r.record(sim.TraceEvent{At: 1, From: 1, To: 2, Size: 1, Pkt: pkt, Lost: true})
	r.record(sim.TraceEvent{At: 1, From: 1, To: 3, Size: 1, Pkt: pkt})
	c := r.Total()[wire.TData]
	if c.Lost != 1 || c.Deliveries != 1 || c.Transmissions != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestPhaseBucketing(t *testing.T) {
	r, err := NewPhased([]string{"setup", "data"}, []time.Duration{time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte{byte(wire.THello)}
	data := []byte{byte(wire.TData)}
	r.record(sim.TraceEvent{At: 500 * time.Millisecond, From: 1, To: 2, Size: 1, Pkt: hello})
	r.record(sim.TraceEvent{At: 1500 * time.Millisecond, From: 1, To: 2, Size: 1, Pkt: data})
	if c := r.Phase("setup")[wire.THello]; c.Transmissions != 1 {
		t.Fatalf("setup hello = %+v", c)
	}
	if c := r.Phase("setup")[wire.TData]; c.Transmissions != 0 {
		t.Fatalf("setup data = %+v", c)
	}
	if c := r.Phase("data")[wire.TData]; c.Transmissions != 1 {
		t.Fatalf("data phase = %+v", c)
	}
	if r.Phase("nope") != nil {
		t.Fatal("unknown phase returned data")
	}
}

// TestFullRunAccounting attaches a recorder to a real deployment and
// checks the message accounting against the protocol's known structure.
func TestFullRunAccounting(t *testing.T) {
	cfg := core.DefaultConfig()
	rec, err := NewPhased([]string{"setup", "operational"}, []time.Duration{cfg.ClusterPhaseEnd + cfg.LinkSpread + 50*time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(core.DeployOptions{
		N: 150, Density: 10, Seed: 77, Trace: rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunSetup(); err != nil {
		t.Fatal(err)
	}
	d.SendReading(42, d.Eng.Now()+10*time.Millisecond, []byte("x"))
	if _, err := d.Eng.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}

	setup := rec.Phase("setup")
	st := d.Clusters()
	// Exactly one HELLO per clusterhead...
	if got := setup[wire.THello].Transmissions; got != st.Heads {
		t.Fatalf("HELLO transmissions %d, want %d heads", got, st.Heads)
	}
	// ...and exactly one LINK-ADVERT per node.
	if got := setup[wire.TLinkAdvert].Transmissions; got != 150 {
		t.Fatalf("LINK-ADVERT transmissions %d, want 150", got)
	}
	// No data traffic during setup; beacons and data come after.
	if got := setup[wire.TData].Transmissions; got != 0 {
		t.Fatalf("data during setup: %d", got)
	}
	op := rec.Phase("operational")
	if op[wire.TBeacon].Transmissions == 0 {
		t.Fatal("no beacon traffic recorded")
	}
	if op[wire.TData].Transmissions == 0 {
		t.Fatal("no data traffic recorded")
	}
	if rec.Transmissions() == 0 {
		t.Fatal("total transmissions zero")
	}
	report := rec.Report()
	for _, want := range []string{"HELLO", "LINK-ADVERT", "BEACON", "DATA", "TOTAL", `phase "setup"`} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestPhaseBoundaryExact pins the half-open bucketing contract: an
// event at exactly the cutoff belongs to the next phase (phase i covers
// [boundary(i-1), boundary(i))), and one a nanosecond earlier to the
// previous.
func TestPhaseBoundaryExact(t *testing.T) {
	r, err := NewPhased([]string{"setup", "data"}, []time.Duration{time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pkt := []byte{byte(wire.THello)}
	r.record(sim.TraceEvent{At: time.Second - time.Nanosecond, From: 1, To: 2, Size: 1, Pkt: pkt})
	r.record(sim.TraceEvent{At: time.Second, From: 3, To: 4, Size: 1, Pkt: pkt})
	if c := r.Phase("setup")[wire.THello]; c.Transmissions != 1 || c.Deliveries != 1 {
		t.Fatalf("setup = %+v, want exactly the pre-cutoff event", c)
	}
	if c := r.Phase("data")[wire.THello]; c.Transmissions != 1 || c.Deliveries != 1 {
		t.Fatalf("data = %+v, want exactly the on-cutoff event", c)
	}
}

// TestZeroDurationFirstPhase: a first boundary of zero is legal and
// makes the first phase an empty [0, 0) window, so even an event at
// t=0 lands in the second phase.
func TestZeroDurationFirstPhase(t *testing.T) {
	r, err := NewPhased([]string{"empty", "rest"}, []time.Duration{0})
	if err != nil {
		t.Fatal(err)
	}
	pkt := []byte{byte(wire.TData)}
	r.record(sim.TraceEvent{At: 0, From: 1, To: 2, Size: 1, Pkt: pkt})
	if c := r.Phase("empty")[wire.TData]; c.Transmissions != 0 {
		t.Fatalf("zero-width phase caught an event: %+v", c)
	}
	if c := r.Phase("rest")[wire.TData]; c.Transmissions != 1 {
		t.Fatalf("rest = %+v, want the t=0 event", c)
	}
	if strings.Contains(r.Report(), `phase "empty"`) {
		t.Fatal("report printed an empty phase block")
	}
}

// TestEqualBoundariesRejected: two identical boundaries would create an
// unreachable zero-width middle phase; NewPhased must refuse them.
func TestEqualBoundariesRejected(t *testing.T) {
	if _, err := NewPhased([]string{"a", "b", "c"},
		[]time.Duration{time.Second, time.Second}); err == nil {
		t.Fatal("equal boundaries accepted")
	}
}
