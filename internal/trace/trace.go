// Package trace provides structured radio-traffic accounting for
// simulated runs: per-message-type transmission/delivery/byte counts,
// optionally bucketed into named protocol phases. It answers the
// questions the paper's cost analysis asks — how many HELLOs, how many
// LINK-ADVERTs, how much of the lifetime traffic is setup versus data —
// with one hook plugged into the simulator.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Counts aggregates traffic for one message type within one phase.
type Counts struct {
	// Transmissions is the number of radio broadcasts.
	Transmissions int
	// Deliveries is the number of successful receptions (one broadcast
	// reaches many neighbors).
	Deliveries int
	// Lost is the number of receptions dropped by the loss model.
	Lost int
	// Bytes is the total transmitted payload volume (per transmission).
	Bytes int64
}

// Recorder classifies every radio delivery by wire message type and
// phase. It is safe for concurrent use (the live runtime delivers from
// many goroutines); under the simulator the mutex is uncontended.
type Recorder struct {
	mu     sync.Mutex
	phases []phase
	// lastTx collapses the per-receiver trace events of one broadcast
	// into a single transmission: the simulator emits the events of one
	// broadcast consecutively with identical (From, At, Size).
	lastFrom uint32
	lastAt   time.Duration
	lastSize int
	havePrev bool
}

type phase struct {
	name  string
	until time.Duration // exclusive upper bound; last phase is +Inf
	byTyp map[wire.Type]*Counts
}

// New returns a recorder with a single unnamed phase covering all time.
func New() *Recorder {
	r := &Recorder{}
	r.phases = []phase{{name: "all", until: 1 << 62, byTyp: map[wire.Type]*Counts{}}}
	return r
}

// NewPhased returns a recorder whose buckets are split at the given
// boundaries: phase i covers [boundary(i-1), boundary(i)), and a final
// phase covers everything after the last boundary. names must have
// len(boundaries)+1 entries.
func NewPhased(names []string, boundaries []time.Duration) (*Recorder, error) {
	if len(names) != len(boundaries)+1 {
		return nil, fmt.Errorf("trace: %d names for %d boundaries", len(names), len(boundaries))
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			return nil, fmt.Errorf("trace: boundaries not increasing at %d", i)
		}
	}
	r := &Recorder{}
	for i, name := range names {
		until := time.Duration(1 << 62)
		if i < len(boundaries) {
			until = boundaries[i]
		}
		r.phases = append(r.phases, phase{name: name, until: until, byTyp: map[wire.Type]*Counts{}})
	}
	return r, nil
}

// Hook returns the callback to install as sim.Config.Trace.
func (r *Recorder) Hook() func(sim.TraceEvent) {
	return func(ev sim.TraceEvent) { r.record(ev) }
}

func (r *Recorder) record(ev sim.TraceEvent) {
	typ := wire.Type(0)
	if len(ev.Pkt) > 0 {
		typ = wire.Type(ev.Pkt[0])
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.phaseAt(ev.At)
	c, ok := ph.byTyp[typ]
	if !ok {
		c = &Counts{}
		ph.byTyp[typ] = c
	}
	// One broadcast shows up as consecutive events sharing (From, At,
	// Size); count the transmission once.
	if !r.havePrev || r.lastFrom != ev.From || r.lastAt != ev.At || r.lastSize != ev.Size {
		c.Transmissions++
		c.Bytes += int64(ev.Size)
		r.lastFrom, r.lastAt, r.lastSize, r.havePrev = ev.From, ev.At, ev.Size, true
	}
	if ev.Lost {
		c.Lost++
	} else {
		c.Deliveries++
	}
}

func (r *Recorder) phaseAt(at time.Duration) *phase {
	for i := range r.phases {
		if at < r.phases[i].until {
			return &r.phases[i]
		}
	}
	return &r.phases[len(r.phases)-1]
}

// Phase returns the accumulated counts of the named phase by message
// type. The returned map is a copy.
func (r *Recorder) Phase(name string) map[wire.Type]Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.phases {
		if r.phases[i].name == name {
			out := make(map[wire.Type]Counts, len(r.phases[i].byTyp))
			for t, c := range r.phases[i].byTyp {
				out[t] = *c
			}
			return out
		}
	}
	return nil
}

// Total returns the summed counts across all phases by message type.
func (r *Recorder) Total() map[wire.Type]Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[wire.Type]Counts)
	for i := range r.phases {
		for t, c := range r.phases[i].byTyp {
			agg := out[t]
			agg.Transmissions += c.Transmissions
			agg.Deliveries += c.Deliveries
			agg.Lost += c.Lost
			agg.Bytes += c.Bytes
			out[t] = agg
		}
	}
	return out
}

// Transmissions returns the total transmissions across all types/phases.
func (r *Recorder) Transmissions() int {
	n := 0
	for _, c := range r.Total() {
		n += c.Transmissions
	}
	return n
}

// Report renders the accounting as an aligned table, one block per
// phase, rows ordered by message type.
func (r *Recorder) Report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for i := range r.phases {
		ph := &r.phases[i]
		if len(ph.byTyp) == 0 {
			continue
		}
		fmt.Fprintf(&b, "phase %q:\n", ph.name)
		fmt.Fprintf(&b, "  %-14s %10s %12s %8s %12s\n", "type", "tx", "deliveries", "lost", "bytes")
		types := make([]wire.Type, 0, len(ph.byTyp))
		for t := range ph.byTyp {
			types = append(types, t)
		}
		sort.Slice(types, func(a, c int) bool { return types[a] < types[c] })
		var tot Counts
		for _, t := range types {
			c := ph.byTyp[t]
			fmt.Fprintf(&b, "  %-14s %10d %12d %8d %12d\n",
				t.String(), c.Transmissions, c.Deliveries, c.Lost, c.Bytes)
			tot.Transmissions += c.Transmissions
			tot.Deliveries += c.Deliveries
			tot.Lost += c.Lost
			tot.Bytes += c.Bytes
		}
		fmt.Fprintf(&b, "  %-14s %10d %12d %8d %12d\n",
			"TOTAL", tot.Transmissions, tot.Deliveries, tot.Lost, tot.Bytes)
	}
	return b.String()
}
