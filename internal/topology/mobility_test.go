package topology

// Tests for the incremental adjacency maintenance behind MoveNode: the
// moved graph's edge set (and edge count) must match a graph freshly
// built from the current positions after every step, and reverse
// neighbor lists must stay consistent with forward ones.

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func sortedAdj(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func adjEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkGraphMatchesFresh pins the moved graph's edge set and edge count
// to a fresh FromPositions build over the same coordinates.
func checkGraphMatchesFresh(t *testing.T, g *Graph, step int) {
	t.Helper()
	pos := make([]geom.Point, g.N())
	for i := range pos {
		pos[i] = g.Pos(i)
	}
	fresh := FromPositions(pos, g.Side(), g.Radius(), g.Metric())
	if g.Edges() != fresh.Edges() {
		t.Fatalf("step %d: moved graph has %d edges, fresh build %d", step, g.Edges(), fresh.Edges())
	}
	for i := 0; i < g.N(); i++ {
		got := sortedAdj(g.Neighbors(i))
		want := sortedAdj(fresh.Neighbors(i))
		if !adjEqual(got, want) {
			t.Fatalf("step %d node %d: moved adj %v != fresh adj %v", step, i, got, want)
		}
		// Reverse consistency: every forward edge has its mirror.
		for _, j := range got {
			if !g.Adjacent(int(j), i) {
				t.Fatalf("step %d: edge %d->%d has no reverse entry", step, i, j)
			}
		}
	}
}

// TestMoveNodeMatchesFreshBuild runs a random walk over several nodes on
// the torus and checks full adjacency equivalence after each move.
func TestMoveNodeMatchesFreshBuild(t *testing.T) {
	rng := xrand.New(41)
	g, err := Generate(rng, Config{N: 70, Density: 8, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableMobility()
	side := g.Side()
	for step := 0; step < 50; step++ {
		i := int(rng.Uint64n(uint64(g.N())))
		p := g.Pos(i)
		p.X += (rng.Float64() - 0.5) * 4 * g.Radius()
		p.Y += (rng.Float64() - 0.5) * 4 * g.Radius()
		for p.X < 0 {
			p.X += side
		}
		for p.X >= side {
			p.X -= side
		}
		for p.Y < 0 {
			p.Y += side
		}
		for p.Y >= side {
			p.Y -= side
		}
		g.MoveNode(i, p)
		if g.Pos(i) != p {
			t.Fatalf("step %d: MoveNode did not update the position", step)
		}
		checkGraphMatchesFresh(t, g, step)
	}
}

// TestMoveNodeDeterministic: the same move sequence from the same seed
// produces identical neighbor lists, order included — the property the
// simulator's byte-equivalence contract needs from a mutable graph.
func TestMoveNodeDeterministic(t *testing.T) {
	run := func() *Graph {
		rng := xrand.New(42)
		g, err := Generate(rng, Config{N: 50, Density: 10, Metric: geom.Torus})
		if err != nil {
			t.Fatal(err)
		}
		g.EnableMobility()
		walk := xrand.New(43)
		for step := 0; step < 30; step++ {
			i := int(walk.Uint64n(uint64(g.N())))
			p := geom.Point{X: walk.Float64() * g.Side(), Y: walk.Float64() * g.Side()}
			g.MoveNode(i, p)
		}
		return g
	}
	a, b := run(), run()
	for i := 0; i < a.N(); i++ {
		if !adjEqual(a.Neighbors(i), b.Neighbors(i)) {
			t.Fatalf("node %d: neighbor order diverged: %v vs %v", i, a.Neighbors(i), b.Neighbors(i))
		}
	}
}

// TestMoveNodeRequiresEnableMobility pins the opt-in contract.
func TestMoveNodeRequiresEnableMobility(t *testing.T) {
	g, err := Generate(xrand.New(44), Config{N: 10, Density: 4, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MoveNode without EnableMobility did not panic")
		}
	}()
	g.MoveNode(0, geom.Point{X: 0.5, Y: 0.5})
}
