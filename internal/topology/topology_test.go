package topology

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func TestRadiusForDensity(t *testing.T) {
	// With radius r on a torus, expected degree = (n-1)*pi*r^2/side^2.
	n, side, d := 2000, 1.0, 12.5
	r := RadiusForDensity(n, side, d)
	got := float64(n-1) * math.Pi * r * r / (side * side)
	if math.Abs(got-d) > 1e-9 {
		t.Fatalf("implied density %v, want %v", got, d)
	}
}

func TestRadiusForDensityPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RadiusForDensity(1, 1, 8) },
		func() { RadiusForDensity(100, 0, 8) },
		func() { RadiusForDensity(100, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGenerateRealizedDensityTorus(t *testing.T) {
	// On a torus the realized mean degree should closely match the target.
	rng := xrand.New(100)
	for _, d := range []float64{8, 12.5, 20} {
		g, err := Generate(rng.Split(uint64(d*10)), Config{N: 3000, Density: d, Metric: geom.Torus})
		if err != nil {
			t.Fatal(err)
		}
		got := g.MeanDegree()
		if math.Abs(got-d)/d > 0.05 {
			t.Fatalf("density %v: realized %v (off by >5%%)", d, got)
		}
	}
}

func TestGeneratePlanarLowerDensity(t *testing.T) {
	// Boundary truncation must make the planar realized density strictly
	// lower than the toroidal one for the same radius.
	rng := xrand.New(101)
	gp, err := Generate(rng.Split(1), Config{N: 2000, Density: 15, Metric: geom.Planar})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := Generate(rng.Split(1), Config{N: 2000, Density: 15, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	if gp.MeanDegree() >= gt.MeanDegree() {
		t.Fatalf("planar density %v not below torus %v", gp.MeanDegree(), gt.MeanDegree())
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := xrand.New(1)
	cases := []Config{
		{N: 0, Density: 8},
		{N: 10},                          // neither density nor radius
		{N: 10, Density: 8, Radius: 0.5}, // both
		{N: 10, Density: 8, Side: -1},    // negative side
	}
	for i, cfg := range cases {
		if _, err := Generate(rng, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	rng := xrand.New(102)
	g, err := Generate(rng, Config{N: 500, Density: 10, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Adjacent(int(v), u) {
				t.Fatalf("asymmetric adjacency %d-%d", u, v)
			}
		}
	}
}

func TestAdjacencyMatchesDistance(t *testing.T) {
	rng := xrand.New(103)
	g, err := Generate(rng, Config{N: 300, Density: 10, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	r2 := g.Radius() * g.Radius()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			within := geom.TorusDist2(g.Pos(u), g.Pos(v), g.Side()) <= r2
			if within != g.Adjacent(u, v) {
				t.Fatalf("adjacency of %d-%d inconsistent with distance", u, v)
			}
		}
	}
}

func TestEdgesCount(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 1.0, Y: 0}, {X: 5, Y: 5}}
	g := FromPositions(pos, 10, 0.6, geom.Planar)
	// edges: 0-1, 1-2.
	if g.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", g.Edges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	if got := g.MeanDegree(); got != 1.0 {
		t.Fatalf("MeanDegree = %v, want 1.0", got)
	}
}

func TestHopCounts(t *testing.T) {
	// Line graph 0-1-2-3, isolated 4.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 8, Y: 8}}
	g := FromPositions(pos, 10, 1.1, geom.Planar)
	d := g.HopCounts(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("HopCounts = %v, want %v", d, want)
		}
	}
}

func TestComponents(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 5}, {X: 5, Y: 6}, {X: 9, Y: 0}}
	g := FromPositions(pos, 20, 1.1, geom.Planar)
	label, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] || label[4] == label[2] {
		t.Fatalf("labels = %v", label)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	giant := g.GiantComponent()
	if len(giant) != 2 {
		t.Fatalf("giant component %v", giant)
	}
}

func TestConnectedAtPaperDensities(t *testing.T) {
	// At density 8+ a 2000-node RGG on a torus should be connected (whp).
	rng := xrand.New(104)
	g, err := Generate(rng, Config{N: 2000, Density: 8, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Skip("rare disconnection at density 8; seed-dependent")
	}
	if len(g.GiantComponent()) != g.N() {
		t.Fatal("giant component should cover the connected graph")
	}
}

func TestDegreeHist(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	g := FromPositions(pos, 10, 1.1, geom.Planar)
	h := g.DegreeHist()
	// Node degrees: 1, 2, 1.
	if len(h) != 3 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("DegreeHist = %v", h)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromPositions(nil, 1, 0.5, geom.Planar)
	if g.N() != 0 || g.Edges() != 0 || g.MeanDegree() != 0 {
		t.Fatal("empty graph not empty")
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(xrand.New(7), Config{N: 200, Density: 10, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(xrand.New(7), Config{N: 200, Density: 10, Metric: geom.Torus})
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges() != b.Edges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.Edges(), b.Edges())
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos(i) != b.Pos(i) {
			t.Fatalf("node %d at different positions", i)
		}
	}
}

func BenchmarkGenerate2000(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(rng.Split(uint64(i)), Config{N: 2000, Density: 12.5, Metric: geom.Torus}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHopCountsBFSProperty(t *testing.T) {
	// BFS invariant: adjacent nodes' hop counts differ by at most one,
	// and every non-source reachable node has a neighbor one hop closer.
	rng := xrand.New(200)
	for trial := 0; trial < 10; trial++ {
		g, err := Generate(rng.Split(uint64(trial)), Config{N: 150, Density: 6 + rng.Float64()*10, Metric: geom.Torus})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.Intn(g.N())
		d := g.HopCounts(src)
		for u := 0; u < g.N(); u++ {
			if d[u] == -1 {
				for _, v := range g.Neighbors(u) {
					if d[v] != -1 {
						t.Fatalf("unreachable node %d adjacent to reachable %d", u, v)
					}
				}
				continue
			}
			hasCloser := u == src
			for _, v := range g.Neighbors(u) {
				if d[v] == -1 {
					t.Fatalf("reachable node %d adjacent to unreachable %d", u, v)
				}
				diff := d[u] - d[v]
				if diff < -1 || diff > 1 {
					t.Fatalf("hop counts of neighbors %d,%d differ by %d", u, v, diff)
				}
				if d[v] == d[u]-1 {
					hasCloser = true
				}
			}
			if !hasCloser {
				t.Fatalf("node %d has no neighbor one hop closer to source", u)
			}
		}
	}
}

func TestComponentsPartition(t *testing.T) {
	// Components form a partition: same label iff connected via edges.
	rng := xrand.New(300)
	g, err := Generate(rng, Config{N: 200, Density: 3, Metric: geom.Torus}) // sparse: many components
	if err != nil {
		t.Fatal(err)
	}
	label, count := g.Components()
	if count < 2 {
		t.Skip("graph connected at this seed; partition test needs fragments")
	}
	for u := 0; u < g.N(); u++ {
		if label[u] < 0 || label[u] >= count {
			t.Fatalf("label out of range: %d", label[u])
		}
		for _, v := range g.Neighbors(u) {
			if label[v] != label[u] {
				t.Fatalf("edge %d-%d crosses components", u, v)
			}
		}
	}
	// Each component's members are mutually reachable: check via BFS from
	// one representative per component.
	rep := make([]int, count)
	for i := range rep {
		rep[i] = -1
	}
	for u := 0; u < g.N(); u++ {
		if rep[label[u]] == -1 {
			rep[label[u]] = u
		}
	}
	for c, r := range rep {
		d := g.HopCounts(r)
		for u := 0; u < g.N(); u++ {
			if (label[u] == c) != (d[u] != -1) {
				t.Fatalf("component %d: reachability disagrees with label at node %d", c, u)
			}
		}
	}
}
