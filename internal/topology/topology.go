// Package topology builds and analyzes the random geometric (unit-disk)
// graphs on which the protocol runs.
//
// The paper's experiments deploy "several thousands of nodes (2500 to 3600)
// in a random topology" and sweep the network *density* — the average number
// of neighbors per node — between 8 and 20 by choosing the communication
// range. This package provides exactly that: uniform deployment, the
// density-to-radius solver, unit-disk adjacency built through a spatial grid
// (O(n) at constant density), and the graph algorithms the experiments and
// the routing substrate need (BFS hop counts, connected components, degree
// statistics).
package topology

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// Graph is a unit-disk communication graph over deployed nodes. Node IDs
// are the indices 0..N()-1. Graphs are immutable after construction
// unless the caller opts into mobility with EnableMobility, after which
// MoveNode updates positions and adjacency incrementally; the mobility
// model serializes all moves on the simulator's coordinator, so Graph
// itself needs no locking.
type Graph struct {
	pos    []geom.Point
	side   float64
	radius float64
	metric geom.Metric
	adj    [][]int32
	edges  int

	// grid is the retained spatial index for incremental MoveNode
	// updates; nil until EnableMobility.
	grid *geom.Grid
}

// Config describes a deployment to generate.
type Config struct {
	// N is the number of nodes (must be > 0).
	N int
	// Side is the side length of the square deployment region. If zero, a
	// unit square is used.
	Side float64
	// Density is the target mean number of neighbors per node. Exactly one
	// of Density or Radius must be set.
	Density float64
	// Radius is an explicit communication radius; used when Density is 0.
	Radius float64
	// Metric selects planar or toroidal distance. Experiments use Torus so
	// the realized density matches the target without boundary effects.
	Metric geom.Metric
}

// RadiusForDensity returns the communication radius that yields the given
// mean degree for n nodes uniformly deployed on a side x side torus: each
// disk of radius r contains on average (n-1) * pi r^2 / side^2 other nodes.
// On a planar square the realized density is slightly lower near the
// boundary; experiments therefore use the torus metric.
func RadiusForDensity(n int, side, density float64) float64 {
	if n < 2 || side <= 0 || density <= 0 {
		panic("topology: RadiusForDensity needs n >= 2, side > 0, density > 0")
	}
	return side * math.Sqrt(density/(math.Pi*float64(n-1)))
}

// Generate deploys cfg.N nodes uniformly at random (driven by rng) and
// connects all pairs within the communication radius.
func Generate(rng *xrand.RNG, cfg Config) (*Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("topology: N must be positive, got %d", cfg.N)
	}
	side := cfg.Side
	if side == 0 {
		side = 1
	}
	if side < 0 {
		return nil, fmt.Errorf("topology: negative side %v", side)
	}
	radius := cfg.Radius
	switch {
	case cfg.Density > 0 && cfg.Radius > 0:
		return nil, fmt.Errorf("topology: set exactly one of Density and Radius")
	case cfg.Density > 0:
		radius = RadiusForDensity(cfg.N, side, cfg.Density)
	case cfg.Radius > 0:
		// keep as given
	default:
		return nil, fmt.Errorf("topology: one of Density or Radius must be positive")
	}
	pos := geom.UniformPoints(rng, cfg.N, side)
	return FromPositions(pos, side, radius, cfg.Metric), nil
}

// FromPositions builds the unit-disk graph over explicit positions. It is
// the entry point for tests and for scenarios that place nodes manually
// (e.g. reproducing the paper's Figure 2 example topology).
func FromPositions(pos []geom.Point, side, radius float64, metric geom.Metric) *Graph {
	grid := geom.NewGrid(pos, side, radius, metric)
	adj := make([][]int32, len(pos))
	edges := 0
	for i := range pos {
		adj[i] = grid.Within(nil, pos[i], radius, int32(i))
		edges += len(adj[i])
	}
	return &Graph{
		pos:    pos,
		side:   side,
		radius: radius,
		metric: metric,
		adj:    adj,
		edges:  edges / 2,
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.pos) }

// Edges returns the number of undirected edges (secure links to establish).
func (g *Graph) Edges() int { return g.edges }

// Radius returns the communication radius.
func (g *Graph) Radius() float64 { return g.radius }

// Side returns the deployment square's side length.
func (g *Graph) Side() float64 { return g.side }

// Metric returns the distance metric the graph was built with.
func (g *Graph) Metric() geom.Metric { return g.metric }

// Pos returns node i's position.
func (g *Graph) Pos(i int) geom.Point { return g.pos[i] }

// Neighbors returns node i's neighbor list. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(i int) []int32 { return g.adj[i] }

// Degree returns the number of neighbors of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// ShardStripes partitions the nodes into `shards` contiguous spatial
// stripes balanced by node count, using the same grid-column geometry
// the adjacency build uses. The result is the shard assignment the
// simulator's intra-trial sharded engine consumes: stripes of whole
// radio-radius columns keep most deliveries within a shard or its
// immediate neighbor. The assignment is a pure function of the graph.
func (g *Graph) ShardStripes(shards int) []int {
	return geom.NewGrid(g.pos, g.side, g.radius, g.metric).ShardStripes(shards)
}

// EnableMobility retains the spatial index FromPositions builds and then
// discards, so MoveNode can update adjacency incrementally. Idempotent;
// call once after construction and before the first MoveNode.
func (g *Graph) EnableMobility() {
	if g.grid == nil {
		g.grid = geom.NewGrid(g.pos, g.side, g.radius, g.metric)
	}
}

// Mobile reports whether EnableMobility has been called.
func (g *Graph) Mobile() bool { return g.grid != nil }

// MoveNode relocates node i to p: the position updates, node i's
// neighbor list is recomputed from the retained grid, and every gained
// or lost edge is patched into the reverse neighbor list and the edge
// count. The result is a pure function of the construction inputs and
// the move sequence — neighbor-list order after a move is canonical but
// intentionally not identical to a fresh FromPositions build (new
// reverse edges append). Requires EnableMobility.
func (g *Graph) MoveNode(i int, p geom.Point) {
	if g.grid == nil {
		panic("topology: MoveNode without EnableMobility")
	}
	old := g.adj[i]
	g.grid.Move(i, p) // g.pos[i] aliases the grid's point slice
	nw := g.grid.Within(nil, p, g.radius, int32(i))
	for _, j := range old {
		if !containsInt32(nw, j) {
			g.adj[j] = removeInt32(g.adj[j], int32(i))
			g.edges--
		}
	}
	for _, j := range nw {
		if !containsInt32(old, j) {
			g.adj[j] = append(g.adj[j], int32(i))
			g.edges++
		}
	}
	g.adj[i] = nw
}

// containsInt32 scans a (short, density-sized) neighbor list for v.
func containsInt32(s []int32, v int32) bool {
	for _, w := range s {
		if w == v {
			return true
		}
	}
	return false
}

// removeInt32 deletes the first occurrence of v, preserving order.
func removeInt32(s []int32, v int32) []int32 {
	for k, w := range s {
		if w == v {
			return append(s[:k], s[k+1:]...)
		}
	}
	return s
}

// Adjacent reports whether u and v are within communication range.
func (g *Graph) Adjacent(u, v int) bool {
	// Neighbor lists are short (the density), so a linear scan wins over
	// any auxiliary structure.
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// MeanDegree returns the realized mean degree (network density).
func (g *Graph) MeanDegree() float64 {
	if len(g.pos) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.pos))
}

// HopCounts returns the BFS hop distance from src to every node; nodes
// unreachable from src get -1. This is the idealized version of the
// base-station beacon flood the routing substrate performs in-protocol.
func (g *Graph) HopCounts(src int) []int {
	dist := make([]int, len(g.pos))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, len(g.pos))
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components returns a component label per node and the component count.
func (g *Graph) Components() (label []int, count int) {
	label = make([]int, len(g.pos))
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for start := range g.pos {
		if label[start] != -1 {
			continue
		}
		label[start] = count
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if label[v] == -1 {
					label[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether the graph has a single connected component.
// The paper's setup phase assumes the communication graph becomes connected;
// at the densities it studies (8-20) random geometric graphs of thousands of
// nodes are connected with overwhelming probability.
func (g *Graph) Connected() bool {
	if len(g.pos) == 0 {
		return true
	}
	_, count := g.Components()
	return count == 1
}

// GiantComponent returns the node IDs of the largest connected component.
func (g *Graph) GiantComponent() []int {
	label, count := g.Components()
	sizes := make([]int, count)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	out := make([]int, 0, sizes[best])
	for i, l := range label {
		if l == best {
			out = append(out, i)
		}
	}
	return out
}

// DegreeHist returns the node-degree histogram counts indexed by degree.
func (g *Graph) DegreeHist() []int {
	maxDeg := 0
	for i := range g.pos {
		if d := len(g.adj[i]); d > maxDeg {
			maxDeg = d
		}
	}
	h := make([]int, maxDeg+1)
	for i := range g.pos {
		h[len(g.adj[i])]++
	}
	return h
}
