//go:build linux

package obs

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes reports this process's peak resident set size (VmHWM
// from /proc/self/status) in bytes, or 0 if it cannot be read. The
// kernel tracks the high-water mark itself, so one read at the end of a
// run captures the whole run's peak.
func PeakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line) // "VmHWM:  123456 kB"
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
