package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp exercises the "observability off" fast path:
// every constructor on a nil registry returns nil, and every method on
// the resulting nil metrics, streams, and scopes is a safe no-op.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Set(3)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h.Observe(1.5)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	if r.Events() != nil {
		t.Fatal("nil registry events")
	}
	var es *EventStream
	es.Emit(Event{Kind: KindCrash})
	es.SetSink(io.Discard)
	if es.Snapshot() != nil || es.Total() != 0 || es.Dropped() != 0 {
		t.Fatal("nil event stream must be empty")
	}
	sc := r.Scope("run", 1)
	if sc != nil {
		t.Fatal("nil registry scope")
	}
	sc.Emit(0, KindElection, 1, 1, "")
	if sc.Registry() != nil {
		t.Fatal("nil scope registry")
	}
	var buf bytes.Buffer
	r.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Fatal("nil registry wrote metrics")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot")
	}
}

// TestCounterConcurrent hammers one counter from many goroutines and
// checks that no increment is lost across the shards.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "test")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for k := 0; k < goroutines; k++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

// TestRegistryIdempotentAndKindChecked: the same name yields the same
// metric, and reusing a name as a different kind panics.
func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "test")
	if b := r.Counter("x_total", "test"); a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "test")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "test")
	g.Set(5)
	g.Add(3)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	// Per-bucket (non-cumulative) counts: le=0.1 gets 0.05 and 0.1;
	// le=1 gets 0.5; le=10 gets 2; overflow gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if math.Abs(s.Sum-102.65) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// nil bounds fall back to DefBuckets.
	d := r.Histogram("lat2", "test", nil)
	d.Observe(0.3)
	if got := len(d.Snapshot().Bounds); got != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", got, len(DefBuckets))
	}
}

// TestPrometheusText checks the exposition format: HELP/TYPE headers,
// cumulative le buckets with +Inf, and name-sorted output.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-4)
	h := r.Histogram("c_seconds", "a histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var buf bytes.Buffer
	r.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP a_gauge a gauge",
		"# TYPE a_gauge gauge",
		"a_gauge -4",
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="1"} 1`,
		`c_seconds_bucket{le="2"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 101",
		"c_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") ||
		strings.Index(out, "b_total") > strings.Index(out, "c_seconds") {
		t.Fatalf("output not sorted by name:\n%s", out)
	}
}

// TestEventRingOverflow shrinks the ring and checks overwrite-oldest
// semantics with exact Total/Dropped accounting.
func TestEventRingOverflow(t *testing.T) {
	old := DefaultEventCapacity
	DefaultEventCapacity = 4
	defer func() { DefaultEventCapacity = old }()
	r := NewRegistry()
	es := r.Events()
	for i := 0; i < 6; i++ {
		es.Emit(Event{Kind: KindRetransmit, Node: i})
	}
	if es.Total() != 6 {
		t.Fatalf("total = %d", es.Total())
	}
	if es.Dropped() != 2 {
		t.Fatalf("dropped = %d", es.Dropped())
	}
	snap := es.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, ev := range snap {
		if ev.Node != i+2 {
			t.Fatalf("snapshot[%d].Node = %d, want %d (oldest-first)", i, ev.Node, i+2)
		}
	}
}

// TestEventSinkAndScopeLabels: a scope stamps run/trial labels and the
// sink receives one JSON object per line.
func TestEventSinkAndScopeLabels(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.Events().SetSink(&buf)
	sc := r.Scope("chaos", 7)
	if sc.Registry() != r {
		t.Fatal("scope registry")
	}
	sc.Emit(3*time.Millisecond, KindRepair, 42, 9, "takeover")
	sc.Emit(4*time.Millisecond, KindKmErase, 42, 9, "")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d:\n%s", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Run != "chaos" || ev.Trial != 7 || ev.Node != 42 || ev.Cluster != 9 ||
		ev.Kind != KindRepair || ev.Detail != "takeover" || ev.At != 3*time.Millisecond {
		t.Fatalf("sink event = %+v", ev)
	}
	if got := r.Events().Snapshot(); len(got) != 2 || got[1].Kind != KindKmErase {
		t.Fatalf("ring = %+v", got)
	}
}

// TestMuxEndpoints serves the full mux and checks every route answers.
func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_repairs_total", "test").Add(2)
	r.Scope("t", 0).Emit(0, KindElection, 1, 1, "")
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "core_repairs_total 2") {
		t.Fatalf("/metrics:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type %q", ctype)
	}
	body, ctype = get("/events")
	if !strings.Contains(body, `"kind":"election"`) {
		t.Fatalf("/events:\n%s", body)
	}
	if ctype != "application/x-ndjson" {
		t.Fatalf("/events content-type %q", ctype)
	}
	body, _ = get("/debug/vars")
	if !strings.Contains(body, `"obs"`) || !strings.Contains(body, "core_repairs_total") {
		t.Fatalf("/debug/vars missing obs snapshot")
	}
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%s", body)
	}
}

// TestServe binds an ephemeral port and scrapes it over real TCP.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "test").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("scrape:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "test").Add(5)
	r.Gauge("g", "test").Set(-1)
	r.Histogram("h_seconds", "test", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["n_total"] != uint64(5) {
		t.Fatalf("snapshot counter = %v", snap["n_total"])
	}
	if snap["g"] != int64(-1) {
		t.Fatalf("snapshot gauge = %v", snap["g"])
	}
	h, ok := snap["h_seconds"].(HistogramSnapshot)
	if !ok || h.Count != 1 {
		t.Fatalf("snapshot histogram = %#v", snap["h_seconds"])
	}
}
