// Package obs is a stdlib-only observability subsystem: a metrics
// registry (counters, gauges, fixed-bucket histograms), a bounded
// structured event stream, and an HTTP exposition server (Prometheus
// text format, expvar, net/http/pprof).
//
// The design contract is that observability must never change what an
// experiment computes. Every metric method is a no-op on a nil
// receiver, and every Registry constructor returns nil from a nil
// Registry, so instrumented code pays exactly one nil check when
// observability is off and draws no randomness, takes no locks, and
// allocates nothing either way. Counters are sharded across cache
// lines so the live goroutine runtime can hammer them from many
// goroutines without contention; the deterministic simulator is
// single-threaded and simply lands on one shard.
//
// See docs/OBSERVABILITY.md for the metric catalog and a walkthrough.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"
)

// metric is anything the registry can expose in Prometheus text format.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
	snapshotValue() any
}

// Registry holds named metrics and the event stream. The zero value is
// not usable; create with NewRegistry. A nil *Registry is a valid
// "observability off" registry: every constructor returns nil and every
// method is a no-op.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	events  *EventStream
}

// NewRegistry returns an empty registry with an event ring of
// DefaultEventCapacity.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		events:  newEventStream(DefaultEventCapacity),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op counter) when r is nil. Registering
// the same name as a different metric kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a no-op gauge) when r is nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given bucket upper bounds (ascending; a +Inf
// bucket is implicit). A nil or empty buckets slice uses DefBuckets.
// Returns nil (a no-op histogram) when r is nil.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return h
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets must be strictly ascending")
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), buckets...),
		buckets: make([]atomic.Uint64, len(buckets)+1),
	}
	r.metrics[name] = h
	return h
}

// Events returns the registry's event stream (nil when r is nil).
func (r *Registry) Events() *EventStream {
	if r == nil {
		return nil
	}
	return r.events
}

// Scope returns an event-emission scope carrying run/trial labels, for
// handing to a deployment so every event it emits is attributable.
// A nil registry yields a nil (no-op) scope.
func (r *Registry) Scope(run string, trial int) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, run: run, trial: trial}
}

// sorted returns the registered metrics ordered by name, for stable
// exposition output.
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	return ms
}

// Snapshot returns the current value of every metric keyed by name:
// uint64 for counters, int64 for gauges, and a HistogramSnapshot for
// histograms. Nil-safe (returns nil).
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, m := range r.sorted() {
		out[m.metricName()] = m.snapshotValue()
	}
	return out
}

// --- Counter ---

// counterShards is the number of cache-line-padded accumulation slots
// per counter. Power of two so the shard pick reduces to a mask.
const counterShards = 16

type counterShard struct {
	n atomic.Uint64
	// Pad to a 64-byte cache line so adjacent shards never false-share.
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter. All
// methods are no-ops on a nil receiver.
type Counter struct {
	name   string
	help   string
	shards [counterShards]counterShard
}

// shardIndex spreads concurrent goroutines across shards by hashing the
// address of a stack variable. Goroutine stacks live in distinct
// allocations, so different goroutines tend to land on different
// shards, while any one goroutine keeps hitting the same cache line.
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe)) >> 10 & (counterShards - 1))
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].n.Add(n)
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total. The sum is not an atomic
// snapshot across shards, but each shard is monotone, so the result is
// always a value the counter passed through.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) snapshotValue() any { return c.Value() }
func (c *Counter) writeProm(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// --- Gauge ---

// Gauge is an integer value that can go up and down. All methods are
// no-ops on a nil receiver.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) snapshotValue() any { return g.Value() }
func (g *Gauge) writeProm(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

// --- Histogram ---

// DefBuckets are general-purpose latency buckets in seconds (the
// Prometheus client default spread).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed buckets. Observe is
// lock-free (atomic bucket increments plus a CAS loop for the sum) and
// a no-op on a nil receiver.
type Histogram struct {
	name    string
	help    string
	bounds  []float64       // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // len(Bounds)+1, last is +Inf
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot returns the current bucket counts, total count, and sum.
// Nil-safe (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) snapshotValue() any { return h.Snapshot() }
func (h *Histogram) writeProm(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	s := h.Snapshot()
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	cum += s.Buckets[len(s.Buckets)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, s.Count)
}

func writeHeader(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
