package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// WriteMetrics renders every registered metric in Prometheus text
// exposition format, sorted by name. Nil-safe (writes nothing).
func (r *Registry) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	for _, m := range r.sorted() {
		m.writeProm(w)
	}
}

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
}

// EventsHandler serves a snapshot of the event ring as JSONL
// (one event object per line, oldest first).
func (r *Registry) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range r.Events().Snapshot() {
			enc.Encode(ev)
		}
	})
}

// expvarReg is the registry most recently attached to a mux; published
// once into expvar under "obs" so /debug/vars includes the metric
// snapshot alongside memstats.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// NewMux returns an http.ServeMux exposing the registry:
//
//	/metrics        Prometheus text format
//	/events         event-ring snapshot as JSONL
//	/debug/vars     expvar (memstats, cmdline, obs metric snapshot)
//	/debug/pprof/*  net/http/pprof profiles
func NewMux(r *Registry) *http.ServeMux {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/events", r.EventsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint. Close stops it.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// registry's mux in a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
