package obs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestInstrumentedChaosRun drives a self-healing deployment through a
// clusterhead crash with observability attached and checks the whole
// pipeline end to end: protocol counters, labeled milestone events, the
// repair-latency histogram, and the HTTP exposition endpoints.
func TestInstrumentedChaosRun(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.KeepAlivePeriod = 100 * time.Millisecond
	cfg.KeepAliveMisses = 3
	cfg.SetupRetries = 2
	cfg.DataRetries = 2

	reg := obs.NewRegistry()
	d, err := core.Deploy(core.DeployOptions{
		N: 200, Density: 10, Seed: 5, Config: cfg,
		Obs: reg.Scope("itest", 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunSetup(); err != nil {
		t.Fatal(err)
	}

	// Crash a clusterhead that has at least one surviving member, so a
	// local repair election is guaranteed to follow.
	members := map[uint32]int{}
	for i, s := range d.Sensors {
		if s == nil || i == d.BSIndex {
			continue
		}
		if cid, ok := s.Cluster(); ok && int(cid) != i {
			members[cid]++
		}
	}
	victim := -1
	for i, s := range d.Sensors {
		if s == nil || i == d.BSIndex {
			continue
		}
		if s.Head() == s.ID() && members[uint32(i)] > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no crashable clusterhead found")
	}
	crashAt := d.Eng.Now() + 50*time.Millisecond
	d.Eng.Schedule(crashAt, func() { d.Eng.Crash(victim) })
	miss := time.Duration(cfg.KeepAliveMisses) * cfg.KeepAlivePeriod
	settled := crashAt + miss + 2*time.Second
	d.Eng.Run(settled)

	// Originate a few readings from survivors so data flows to the BS.
	sent := 0
	for i := 1; i < 200 && sent < 10; i += 17 {
		if i == d.BSIndex || !d.Eng.Alive(i) {
			continue
		}
		d.SendReading(i, settled+time.Duration(sent+1)*20*time.Millisecond, []byte{byte(i)})
		sent++
	}
	d.Eng.Run(settled + 3*time.Second)

	snap := reg.Snapshot()
	count := func(name string) uint64 {
		v, _ := snap[name].(uint64)
		return v
	}
	for _, name := range []string{
		"core_elections_total",
		"core_setup_tx_total",
		"core_setup_retx_total",
		"core_km_erasures_total",
		"core_repairs_total",
		"core_bs_deliveries_total",
		"sim_tx_total",
		"sim_rx_total",
		"sim_events_total",
	} {
		if count(name) == 0 {
			t.Errorf("%s = 0, want nonzero", name)
		}
	}
	if got := count("sim_crashes_total"); got != 1 {
		t.Errorf("sim_crashes_total = %d, want 1", got)
	}
	hist, ok := snap["core_repair_takeover_seconds"].(obs.HistogramSnapshot)
	if !ok || hist.Count == 0 {
		t.Errorf("core_repair_takeover_seconds = %#v, want observations", snap["core_repair_takeover_seconds"])
	}

	// The milestone stream must carry the election, erasure, crash, and
	// repair events, all stamped with the scope's run/trial labels.
	kinds := map[string]int{}
	for _, ev := range reg.Events().Snapshot() {
		if ev.Run != "itest" || ev.Trial != 3 {
			t.Fatalf("event with wrong labels: %+v", ev)
		}
		kinds[ev.Kind]++
	}
	for _, k := range []string{
		obs.KindElection, obs.KindKmErase, obs.KindCrash,
		obs.KindRepairStart, obs.KindRepair, obs.KindRetransmit,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %q events recorded (kinds: %v)", k, kinds)
		}
	}

	// Scrape the live endpoints the way CI does.
	srv := httptest.NewServer(obs.NewMux(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, pat := range []string{
		`(?m)^core_setup_tx_total [1-9]`,
		`(?m)^core_repairs_total [1-9]`,
		`(?m)^core_setup_retx_total [1-9]`,
	} {
		if !regexp.MustCompile(pat).Match(body) {
			t.Errorf("/metrics missing %s:\n%s", pat, body)
		}
	}
	prof, err := http.Get(srv.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, prof.Body)
	prof.Body.Close()
	if prof.StatusCode != http.StatusOK {
		t.Errorf("pprof profile status %s", prof.Status)
	}
}
