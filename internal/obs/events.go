package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultEventCapacity is the ring size of a registry's event stream.
var DefaultEventCapacity = 8192

// Event is one structured protocol milestone. At is virtual simulation
// time for the deterministic engine and time-since-start for the live
// runtime; it marshals as integer nanoseconds.
type Event struct {
	At      time.Duration `json:"at"`
	Kind    string        `json:"kind"`
	Run     string        `json:"run,omitempty"`
	Trial   int           `json:"trial"`
	Node    int           `json:"node"`
	Cluster uint32        `json:"cluster,omitempty"`
	Detail  string        `json:"detail,omitempty"`
}

// Event kinds emitted by the instrumented protocol layers.
const (
	KindElection    = "election"     // a node elected itself clusterhead during setup
	KindRepair      = "repair"       // a repair candidate took over a dead head's cluster
	KindRepairStart = "repair-start" // keep-alive loss triggered a repair election
	KindRetransmit  = "retransmit"   // a setup or data frame was retransmitted (Detail: hello|link|data)
	KindKmErase     = "km-erase"     // a node erased the master key Km
	KindDegraded    = "degraded"     // a reading exhausted its retries without an acknowledgment
	KindCrash       = "crash"        // fault plan or scenario crashed a node
	KindReboot      = "reboot"       // a crashed node rebooted

	KindHandoffStart = "handoff-start" // a mobile node left its cluster after keep-alive loss
	KindHandoff      = "handoff"       // a mobile node completed a cluster handoff (Cluster: new CID)
)

// EventStream is a bounded ring of Events with an optional JSONL sink.
// When the ring is full the oldest event is overwritten; Total and
// Dropped account for everything emitted. All methods are no-ops (or
// zero) on a nil receiver.
type EventStream struct {
	mu    sync.Mutex
	buf   []Event
	start int // index of the oldest retained event
	n     int // retained count
	total uint64
	sink  io.Writer
}

func newEventStream(capacity int) *EventStream {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventStream{buf: make([]Event, capacity)}
}

// SetSink directs a JSONL copy of every subsequent event to w (one JSON
// object per line). Pass nil to detach. The ring keeps filling either
// way.
func (s *EventStream) SetSink(w io.Writer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sink = w
	s.mu.Unlock()
}

// Emit appends ev to the ring (overwriting the oldest event when full)
// and writes it to the sink if one is attached.
func (s *EventStream) Emit(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if s.sink != nil {
		if b, err := json.Marshal(ev); err == nil {
			s.sink.Write(append(b, '\n'))
		}
	}
	if s.n < len(s.buf) {
		s.buf[(s.start+s.n)%len(s.buf)] = ev
		s.n++
		return
	}
	s.buf[s.start] = ev
	s.start = (s.start + 1) % len(s.buf)
}

// Snapshot returns the retained events oldest-first.
func (s *EventStream) Snapshot() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Total returns how many events have ever been emitted.
func (s *EventStream) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Dropped returns how many emitted events the ring has overwritten.
func (s *EventStream) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - uint64(s.n)
}

// Scope binds a registry's event stream to run/trial labels so
// instrumented code can emit attributable events with one call. A nil
// Scope is "observability off": Emit is a no-op and Registry returns
// nil, which in turn makes every metric constructor return nil.
type Scope struct {
	reg   *Registry
	run   string
	trial int
}

// Registry returns the underlying registry (nil for a nil scope).
func (sc *Scope) Registry() *Registry {
	if sc == nil {
		return nil
	}
	return sc.reg
}

// Emit records a labeled event on the scope's stream.
func (sc *Scope) Emit(at time.Duration, kind string, node int, cluster uint32, detail string) {
	if sc == nil {
		return
	}
	sc.reg.events.Emit(Event{
		At:      at,
		Kind:    kind,
		Run:     sc.run,
		Trial:   sc.trial,
		Node:    node,
		Cluster: cluster,
		Detail:  detail,
	})
}
