//go:build !linux

package obs

// PeakRSSBytes reports 0 on platforms without /proc/self/status; the
// ScaleSweep table prints the column as absent rather than guessing.
func PeakRSSBytes() int64 { return 0 }
